//lint:file-ignore SA1019 this file deliberately calls the deprecated constructors to pin wrapper equivalence
package higgs_test

import (
	"strings"
	"testing"

	"higgs"
)

// TestWindowFacade: the Window-based constructors, their options, and the
// deprecated wrappers must all build the same wire queries.
func TestWindowFacade(t *testing.T) {
	w := higgs.Between(0, 500)
	pairs := []struct {
		name     string
		new, old higgs.Query
	}{
		{"edge", higgs.NewEdgeQuery(1, 2, w), higgs.EdgeQuery(1, 2, 0, 500)},
		{"vertex out", higgs.NewVertexQuery(1, w), higgs.VertexOutQuery(1, 0, 500)},
		{"vertex out explicit", higgs.NewVertexQuery(1, w, higgs.WithDirection(higgs.DirOut)),
			higgs.VertexOutQuery(1, 0, 500)},
		{"vertex in", higgs.NewVertexQuery(2, w, higgs.WithDirection(higgs.DirIn)),
			higgs.VertexInQuery(2, 0, 500)},
		{"path", higgs.NewPathQuery([]uint64{1, 2}, w), higgs.PathQuery([]uint64{1, 2}, 0, 500)},
		{"subgraph", higgs.NewSubgraphQuery([][2]uint64{{1, 2}}, w),
			higgs.SubgraphQuery([][2]uint64{{1, 2}}, 0, 500)},
	}
	for _, p := range pairs {
		if p.new.Kind != p.old.Kind || p.new.Ts != p.old.Ts || p.new.Te != p.old.Te ||
			p.new.Dir != p.old.Dir || p.new.V != p.old.V || p.new.S != p.old.S {
			t.Errorf("%s: new %+v != wrapper %+v", p.name, p.new, p.old)
		}
	}

	dq := higgs.NewDeltaVertexQuery([]uint64{1, 2}, higgs.Between(0, 10), higgs.Between(11, 20),
		higgs.WithTopK(5), higgs.WithDirection(higgs.DirIn))
	if dq.Kind != higgs.QueryDeltaVertex || dq.Ts != 0 || dq.Te != 10 || dq.Ts2 != 11 || dq.Te2 != 20 ||
		dq.K != 5 || dq.Dir != higgs.DirIn || len(dq.Candidates) != 2 {
		t.Errorf("delta vertex query misbuilt: %+v", dq)
	}
	hq := higgs.NewHeavyHittersQuery(higgs.WithDirection(higgs.DirIn), higgs.WithTopK(3))
	if hq.Kind != higgs.QueryHeavyHitters || hq.Dir != higgs.DirIn || hq.K != 3 {
		t.Errorf("heavy hitters query misbuilt: %+v", hq)
	}
	bq := higgs.NewBurstQuery(higgs.WithTopK(7))
	if bq.Kind != higgs.QueryBurst || bq.K != 7 {
		t.Errorf("burst query misbuilt: %+v", bq)
	}
	cq := higgs.NewDeltaVertexQuery(nil, higgs.Between(0, 10), higgs.Between(11, 20),
		higgs.WithCandidates([]uint64{9}))
	if len(cq.Candidates) != 1 || cq.Candidates[0] != 9 {
		t.Errorf("WithCandidates not applied: %+v", cq)
	}
}

// TestZeroWindowRejected: the zero Window is invalid by design — a query
// that never set its window fails with a distinct error instead of
// silently answering the weight at instant 0.
func TestZeroWindowRejected(t *testing.T) {
	s := newSeededSharded(t, 2)
	var zero higgs.Window
	r := s.Do(higgs.NewEdgeQuery(1, 2, zero))
	if r.Err == nil || !strings.Contains(r.Err.Error(), "zero-value window") {
		t.Fatalf("zero window not rejected distinctly: %+v", r)
	}
	// A genuine single-instant window elsewhere on the axis stays valid.
	if r := s.Do(higgs.NewEdgeQuery(1, 2, higgs.Between(100, 100))); r.Err != nil {
		t.Fatalf("single-instant window rejected: %v", r.Err)
	}
}

// TestAnalyticsFacade: the library-level analytics wiring — NewAnalytics,
// SetApplyObserver, DoBatchWith — answers heavy-hitter, burst, and delta
// queries without higgsd.
func TestAnalyticsFacade(t *testing.T) {
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	eng, err := higgs.NewAnalytics(higgs.AnalyticsConfig{Shards: 2, Seed: cfg.Core.Seed})
	if err != nil {
		t.Fatal(err)
	}
	s.SetApplyObserver(eng)

	var tick int64
	for v := uint64(0); v < 50; v++ {
		s.Insert(higgs.Edge{S: v, D: v + 1, W: 1, T: tick})
		tick++
	}
	s.Insert(higgs.Edge{S: 1000, D: 1, W: 900, T: tick})

	rs := higgs.DoBatchWith(s, eng, []higgs.Query{
		higgs.NewHeavyHittersQuery(higgs.WithTopK(1)),
		higgs.NewBurstQuery(),
		higgs.NewDeltaVertexQuery([]uint64{1000}, higgs.Between(0, tick-1), higgs.Between(tick, tick+10)),
	})
	if rs[0].Err != nil || len(rs[0].Top) != 1 || rs[0].Top[0].S != 1000 {
		t.Fatalf("heavy hitters through the facade = %+v", rs[0])
	}
	if rs[1].Err != nil {
		t.Fatalf("burst through the facade: %v", rs[1].Err)
	}
	if rs[2].Err != nil || len(rs[2].Top) != 1 || rs[2].Top[0].Delta != 900 {
		t.Fatalf("delta through the facade = %+v", rs[2])
	}

	// Without an engine the sketch kinds fail per item with a stable code.
	rs = higgs.DoBatchWith(s, nil, []higgs.Query{higgs.NewHeavyHittersQuery()})
	if rs[0].Err == nil || !strings.Contains(rs[0].Err.Error(), "analytics") {
		t.Fatalf("nil-engine sketch query = %+v", rs[0])
	}
}
