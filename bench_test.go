// Benchmarks regenerating the paper's evaluation (one per table/figure, as
// indexed in DESIGN.md §5), plus per-structure micro-benchmarks for the
// latency-oriented figures. Accuracy and space numbers are emitted through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the rows;
// `cmd/higgsbench` prints the same data as full tables at larger scale.
package higgs_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"higgs/internal/bench"
	"higgs/internal/core"
	"higgs/internal/metrics"
	"higgs/internal/stream"
	"higgs/internal/trq"
)

// benchOptions keeps in-process figure benchmarks affordable; higgsbench
// runs the same experiments at full scale.
func benchOptions() bench.Options {
	return bench.Options{
		Scale:           0.05,
		EdgeQueries:     100,
		VertexQueries:   40,
		PathQueries:     20,
		SubgraphQueries: 10,
		SkewNodes:       2000,
		SkewEdges:       20000,
		Seed:            7,
		Out:             io.Discard,
		Presets:         []stream.Preset{stream.Lkml},
	}
}

var (
	dsOnce    sync.Once
	benchDS   *bench.Dataset
	buildMu   sync.Mutex
	buildOnce = map[string]trq.Summary{}
)

// sharedDataset is the stream shared by the micro-benchmarks (~35K edges).
func sharedDataset(b *testing.B) *bench.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		ds, err := bench.LoadPreset(stream.Lkml, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		benchDS = ds
	})
	return benchDS
}

// builtSummary returns a cached, fully loaded competitor. Callers must not
// mutate it (deletion benchmarks build their own copies).
func builtSummary(b *testing.B, name string) trq.Summary {
	b.Helper()
	ds := sharedDataset(b)
	buildMu.Lock()
	defer buildMu.Unlock()
	if s, ok := buildOnce[name]; ok {
		return s
	}
	for _, bl := range bench.Competitors(ds, 7) {
		if bl.Name != name {
			continue
		}
		s, err := bl.New()
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range ds.Stream {
			s.Insert(e)
		}
		trq.Finalize(s)
		buildOnce[name] = s
		return s
	}
	b.Fatalf("unknown competitor %q", name)
	return nil
}

var competitorNames = []string{"HIGGS", "PGSS", "Horae", "Horae-cpt", "AuxoTime", "AuxoTime-cpt"}

// BenchmarkTable2Datasets regenerates Table II (dataset synthesis +
// statistics).
func BenchmarkTable2Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Run("table2", benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16InsertThroughput measures per-item insertion cost per
// structure (Fig. 16 throughput ⇔ 1/latency of Fig. 17).
func BenchmarkFig16InsertThroughput(b *testing.B) {
	ds := sharedDataset(b)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			var builder bench.Builder
			for _, bl := range bench.Competitors(ds, 7) {
				if bl.Name == name {
					builder = bl
				}
			}
			s, err := builder.New()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(ds.Stream[i%len(ds.Stream)])
			}
			b.StopTimer()
			trq.Close(s)
		})
	}
}

// BenchmarkFig17InsertLatency is the latency view of the same measurement.
func BenchmarkFig17InsertLatency(b *testing.B) { BenchmarkFig16InsertThroughput(b) }

// BenchmarkFig10EdgeQueries measures edge-query latency per structure at
// Lq = 10^5 and reports AAE/ARE (Fig. 10).
func BenchmarkFig10EdgeQueries(b *testing.B) {
	ds := sharedDataset(b)
	w := trq.NewWorkload(ds.Truth, 3)
	queries := w.EdgeQueries(512, 1e5)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			s := builtSummary(b, name)
			var acc metrics.Accuracy
			for _, q := range queries {
				acc.Observe(s.EdgeWeight(q.S, q.D, q.Ts, q.Te), ds.Truth.EdgeWeight(q.S, q.D, q.Ts, q.Te))
			}
			b.ReportMetric(acc.AAE(), "AAE")
			b.ReportMetric(acc.ARE(), "ARE")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				s.EdgeWeight(q.S, q.D, q.Ts, q.Te)
			}
		})
	}
}

// BenchmarkFig11VertexQueries measures vertex-query latency per structure
// at Lq = 10^5 and reports AAE (Fig. 11).
func BenchmarkFig11VertexQueries(b *testing.B) {
	ds := sharedDataset(b)
	w := trq.NewWorkload(ds.Truth, 4)
	queries := w.VertexQueries(256, 1e5)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			s := builtSummary(b, name)
			var acc metrics.Accuracy
			for _, q := range queries {
				if q.Out {
					acc.Observe(s.VertexOut(q.V, q.Ts, q.Te), ds.Truth.VertexOut(q.V, q.Ts, q.Te))
				} else {
					acc.Observe(s.VertexIn(q.V, q.Ts, q.Te), ds.Truth.VertexIn(q.V, q.Ts, q.Te))
				}
			}
			b.ReportMetric(acc.AAE(), "AAE")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				if q.Out {
					s.VertexOut(q.V, q.Ts, q.Te)
				} else {
					s.VertexIn(q.V, q.Ts, q.Te)
				}
			}
		})
	}
}

// BenchmarkFig12PathQueries measures 4-hop path-query latency per structure
// at Lq = 10^5 and reports AAE (Fig. 12).
func BenchmarkFig12PathQueries(b *testing.B) {
	ds := sharedDataset(b)
	w := trq.NewWorkload(ds.Truth, 5)
	queries := w.PathQueries(128, 4, 1e5)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			s := builtSummary(b, name)
			var acc metrics.Accuracy
			for _, q := range queries {
				acc.Observe(trq.PathWeight(s, q.Path, q.Ts, q.Te), ds.Truth.PathWeight(q.Path, q.Ts, q.Te))
			}
			b.ReportMetric(acc.AAE(), "AAE")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				trq.PathWeight(s, q.Path, q.Ts, q.Te)
			}
		})
	}
}

// BenchmarkFig13SubgraphQueries measures 200-edge subgraph-query latency
// per structure at Lq = 10^5 and reports AAE (Fig. 13).
func BenchmarkFig13SubgraphQueries(b *testing.B) {
	ds := sharedDataset(b)
	w := trq.NewWorkload(ds.Truth, 6)
	queries := w.SubgraphQueries(32, 200, 1e5)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			s := builtSummary(b, name)
			var acc metrics.Accuracy
			for _, q := range queries {
				acc.Observe(trq.SubgraphWeight(s, q.Edges, q.Ts, q.Te), ds.Truth.SubgraphWeight(q.Edges, q.Ts, q.Te))
			}
			b.ReportMetric(acc.AAE(), "AAE")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				trq.SubgraphWeight(s, q.Edges, q.Ts, q.Te)
			}
		})
	}
}

// BenchmarkFig14Skewness regenerates the skewness sweep (Fig. 14).
func BenchmarkFig14Skewness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Run("fig14", benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15Variance regenerates the variance sweep (Fig. 15).
func BenchmarkFig15Variance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Run("fig15", benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18DeleteThroughput measures per-item deletion cost per
// structure (Fig. 18). Deleted items are re-inserted outside the timer so
// the structure stays loaded.
func BenchmarkFig18DeleteThroughput(b *testing.B) {
	ds := sharedDataset(b)
	sample := ds.Stream
	if len(sample) > 4096 {
		sample = sample[:4096]
	}
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			var builder bench.Builder
			for _, bl := range bench.Competitors(ds, 7) {
				if bl.Name == name {
					builder = bl
				}
			}
			s, err := builder.New()
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range ds.Stream {
				s.Insert(e)
			}
			trq.Finalize(s)
			del := s.(trq.Deleter)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i > 0 && i%len(sample) == 0 {
					b.StopTimer() // restore deleted items
					for _, e := range sample {
						s.Insert(e)
					}
					b.StartTimer()
				}
				del.Delete(sample[i%len(sample)])
			}
			b.StopTimer()
			trq.Close(s)
		})
	}
}

// BenchmarkFig19Space reports packed bytes per edge for every structure
// (Fig. 19).
func BenchmarkFig19Space(b *testing.B) {
	ds := sharedDataset(b)
	for _, name := range competitorNames {
		name := name
		b.Run(name, func(b *testing.B) {
			s := builtSummary(b, name)
			var space int64
			for i := 0; i < b.N; i++ {
				space = s.SpaceBytes()
			}
			b.ReportMetric(float64(space)/float64(ds.Stats.Edges), "bytes/edge")
		})
	}
}

// BenchmarkFig20Optimizations measures HIGGS insert cost per optimization
// variant (Fig. 20a/b): baseline, parallel aggregation, no MMB, no OB.
func BenchmarkFig20Optimizations(b *testing.B) {
	ds := sharedDataset(b)
	variants := []struct {
		name string
		cfg  func() core.Config
	}{
		{"baseline", core.DefaultConfig},
		{"parallel", func() core.Config { c := core.DefaultConfig(); c.Parallel = true; return c }},
		{"noMMB", func() core.Config { c := core.DefaultConfig(); c.Maps = 1; return c }},
		{"noOB", func() core.Config { c := core.DefaultConfig(); c.OverflowBlocks = false; return c }},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			s, err := core.New(v.cfg())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(ds.Stream[i%len(ds.Stream)])
			}
			b.StopTimer()
			st := s.Stats()
			b.ReportMetric(float64(st.Leaves), "leaves")
			b.ReportMetric(float64(st.SpaceBytes)/float64(st.Items+1), "bytes/item")
			s.Close()
		})
	}
}

// BenchmarkFig21Parameters measures HIGGS edge-query cost per leaf matrix
// size d1 and reports the space trade-off (Fig. 21).
func BenchmarkFig21Parameters(b *testing.B) {
	ds := sharedDataset(b)
	w := trq.NewWorkload(ds.Truth, 8)
	queries := w.EdgeQueries(256, 1e5)
	for _, d1 := range []uint32{4, 8, 16, 32, 64} {
		d1 := d1
		b.Run(fmt.Sprintf("d1=%d", d1), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.D1 = d1
			s, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range ds.Stream {
				s.Insert(e)
			}
			s.Finalize()
			b.ReportMetric(float64(s.SpaceBytes())/float64(ds.Stats.Edges), "bytes/edge")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				s.EdgeWeight(q.S, q.D, q.Ts, q.Te)
			}
		})
	}
}
