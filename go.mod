module higgs

go 1.24
