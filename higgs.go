// Package higgs is the public API of this repository: a Go implementation
// of HIGGS — HIerarchy-Guided Graph Stream Summarization (Zhao, Xie,
// Jensen; ICDE 2025) — together with the graph stream model it operates on.
//
// A HIGGS summary ingests a time-ordered stream of weighted directed edges
// and answers temporal range queries (edge, vertex, path, and subgraph
// weights over arbitrary time windows) approximately, with one-sided error:
// results never under-estimate the truth. Internally it is an item-based,
// bottom-up aggregated B-tree of compressed matrices; see DESIGN.md for the
// architecture and internal/ for the substrates and the baselines used by
// the benchmark harness (TCM, GSS, Auxo, PGSS, Horae, AuxoTime).
//
// # Quick start
//
//	s, err := higgs.New(higgs.DefaultConfig())
//	if err != nil { ... }
//	s.Insert(higgs.Edge{S: alice, D: bob, W: 1, T: now})
//	...
//	w := s.EdgeWeight(alice, bob, t0, t1) // weight of alice→bob in [t0,t1]
//
// Runnable examples live under examples/, and cmd/higgsbench regenerates
// every table and figure of the paper's evaluation.
package higgs

import (
	"io"
	"time"

	"higgs/internal/admit"
	"higgs/internal/analytics"
	"higgs/internal/core"
	"higgs/internal/ingest"
	"higgs/internal/query"
	"higgs/internal/rcache"
	"higgs/internal/repl"
	"higgs/internal/shard"
	"higgs/internal/stream"
	"higgs/internal/wal"
)

// Edge is one graph stream item: a directed edge S→D carrying weight W,
// arriving at time T (seconds). Streams must arrive in non-decreasing T
// order.
type Edge = stream.Edge

// Stream is a time-ordered sequence of edges.
type Stream = stream.Stream

// Config parameterizes a HIGGS summary; see DefaultConfig for the paper's
// recommended values.
type Config = core.Config

// Summary is a HIGGS graph stream summary. See package core for full
// method documentation: Insert, Delete, EdgeWeight, VertexOut, VertexIn,
// PathWeight, SubgraphWeight, Expire, Finalize, Stats.
type Summary = core.Summary

// Stats reports structural statistics of a summary.
type Stats = core.Stats

// DefaultConfig returns the paper's recommended configuration (§VI-A):
// 16×16 leaf matrices, 19-bit fingerprints, 3-entry buckets, θ = 4,
// 4 mapping positions per vertex, overflow blocks enabled.
func DefaultConfig() Config { return core.DefaultConfig() }

// New returns an empty HIGGS summary for the given configuration.
func New(cfg Config) (*Summary, error) { return core.New(cfg) }

// FromStream builds a summary over an existing stream and finalizes it, so
// it is immediately ready for whole-range queries and space accounting.
func FromStream(cfg Config, s Stream) (*Summary, error) {
	sum, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, e := range s {
		sum.Insert(e)
	}
	sum.Finalize()
	return sum, nil
}

// GenerateStream synthesizes a deterministic graph stream with power-law
// vertex degrees and bursty arrivals; see stream.Config for the knobs.
func GenerateStream(cfg StreamConfig) (Stream, error) { return stream.Generate(cfg) }

// StreamConfig controls synthetic stream generation.
type StreamConfig = stream.Config

// Load restores a summary from a snapshot previously written with
// Summary.WriteTo. Unless the snapshot was finalized, the loaded summary
// continues accepting inserts where the original left off.
func Load(r io.Reader) (*Summary, error) { return core.Read(r) }

// Sharded is a hash-partitioned HIGGS summary: edges are partitioned by
// source vertex across independent shards, each behind its own lock, so
// ingest parallelizes and queries fan out concurrently. Unlike Summary, a
// Sharded is safe for concurrent use by multiple goroutines. Besides the
// per-kind query methods it answers unified queries via Do and DoBatch
// (the batch path acquires at most one read lock per shard per batch; see
// Query), and it supports sliding-window operation via Expire, which
// drops fully expired subtrees shard by shard under the shards' write
// locks. See package shard for full method documentation and DESIGN.md §8
// for the partitioning model.
//
// Durable-retention invariant: once a Sharded summary is fed by a
// WAL-backed Ingest pipeline (IngestConfig.WAL), the pipeline's Expire is
// the ONLY expire entry point — it sequences the expire against in-flight
// batches and records it in the log, so crash recovery reproduces it.
// Calling Sharded.Expire directly on such a summary panics: the unlogged
// expire would be silently undone on the next recovery, resurrecting
// every expired edge (DESIGN.md §13).
type Sharded = shard.Summary

// ShardedConfig parameterizes a sharded summary: the shard count and the
// per-shard HIGGS configuration.
type ShardedConfig = shard.Config

// ShardedStats reports aggregate and per-shard structural statistics.
type ShardedStats = shard.Stats

// DefaultShardedConfig returns a 4-way sharded version of DefaultConfig.
func DefaultShardedConfig() ShardedConfig { return shard.DefaultConfig() }

// NewSharded returns an empty sharded summary for the given configuration.
func NewSharded(cfg ShardedConfig) (*Sharded, error) { return shard.New(cfg) }

// LoadSharded restores a sharded summary from a snapshot previously
// written with Sharded.WriteTo. It also accepts unsharded snapshots
// (written by Summary.WriteTo), which load as a one-shard summary.
func LoadSharded(r io.Reader) (*Sharded, error) { return shard.Read(r) }

// Ingest is an asynchronous group-commit pipeline in front of a Sharded
// summary: Submit routes edges into per-shard bounded queues, committer
// goroutines apply whatever accumulated under one lock acquisition per
// shard, Flush is the visibility barrier, Expire is the sequenced (and,
// with a WAL, logged and crash-safe) sliding-window retention entry
// point, and Close drains everything accepted. See package ingest for
// full method documentation and DESIGN.md §9 and §13 for the model.
type Ingest = ingest.Pipeline

// IngestConfig parameterizes an ingest pipeline: admission mode, per-shard
// queue depth, group-commit accumulation window, and the auto-mode
// synchronous-batch threshold.
type IngestConfig = ingest.Config

// IngestMode selects how Ingest.Submit applies batches.
type IngestMode = ingest.Mode

// Ingest admission modes; see the ingest package constants.
const (
	IngestAuto  = ingest.ModeAuto
	IngestSync  = ingest.ModeSync
	IngestAsync = ingest.ModeAsync
)

// Backpressure and lifecycle errors returned by Ingest.Submit.
var (
	ErrIngestQueueFull = ingest.ErrQueueFull
	ErrIngestClosed    = ingest.ErrClosed
)

// DefaultIngestConfig returns the default pipeline configuration (auto
// mode, 4096-edge queues, no accumulation delay).
func DefaultIngestConfig() IngestConfig { return ingest.DefaultConfig() }

// NewIngest returns a group-commit ingest pipeline over the summary. The
// pipeline does not own the summary: close the pipeline first (draining
// accepted edges), then the summary.
func NewIngest(s *Sharded, cfg IngestConfig) (*Ingest, error) { return ingest.New(s, cfg) }

// WAL is a segmented, fsync-batched write-ahead log of stream edges: the
// durability substrate in front of an Ingest pipeline (IngestConfig.WAL),
// making accepted edges survive a crash, not just an orderly shutdown. See
// package wal for full method documentation and DESIGN.md §12 for the
// format, sync policy, truncation rule, and recovery sequence.
type WAL = wal.Log

// WALConfig parameterizes a write-ahead log: the directory, the segment
// rotation threshold, and the group-sync cadence.
type WALConfig = wal.Config

// OpenWAL opens (creating if necessary) the log in cfg.Dir, repairing a
// torn tail from a previous crash. Recover the summary (Recover) before
// handing the log to an ingest pipeline.
func OpenWAL(cfg WALConfig) (*WAL, error) { return wal.Open(cfg) }

// Recover replays a write-ahead log into a sharded summary — freshly
// built, or loaded from the latest snapshot, whose per-shard watermarks
// tell Recover exactly which edges to skip. It returns the number of
// edges applied and must run before the log backs a live pipeline.
func Recover(s *Sharded, w *WAL) (int64, error) { return ingest.Recover(s, w) }

// Snapshotter takes periodic background snapshots of a WAL-backed
// pipeline's summary and truncates the log's covered prefix. See
// ingest.Snapshotter.
type Snapshotter = ingest.Snapshotter

// NewSnapshotter returns a snapshotter writing the summary atomically to
// path every interval once Start is called (interval ≤ 0 disables the
// loop; Snap still works on demand). onError observes background failures.
func NewSnapshotter(s *Sharded, p *Ingest, w *WAL, path string, interval time.Duration, onError func(error)) *Snapshotter {
	return ingest.NewSnapshotter(s, p, w, path, interval, onError)
}

// WriteSnapshot writes the summary's snapshot to path atomically (temp
// file + fsync + rename), so a crash mid-write leaves the previous
// snapshot intact.
func WriteSnapshot(s *Sharded, path string) error { return ingest.WriteSnapshot(s, path) }

// Retainer runs sliding-window retention over an Ingest pipeline: every
// RetentionConfig.Interval it expires everything older than now minus
// RetentionConfig.Window through Ingest.Expire, so each expire is
// sequenced against in-flight batches and — on a WAL-backed pipeline —
// logged and crash-safe. See ingest.Retainer and DESIGN.md §13.
type Retainer = ingest.Retainer

// RetentionConfig parameterizes a Retainer: the sliding window, the loop
// cadence (0 = Window/10, at least one second), an optional clock
// override, and an optional background-error observer.
type RetentionConfig = ingest.RetentionConfig

// NewRetainer returns a retainer enforcing cfg over the pipeline once
// Start is called. Close the retainer before closing the pipeline. A
// caller that swaps pipelines at runtime should use ingest.NewRetainer
// directly with a pipeline accessor; this convenience binding is for the
// common case of one long-lived pipeline.
func NewRetainer(p *Ingest, cfg RetentionConfig) (*Retainer, error) {
	return ingest.NewRetainer(func() *ingest.Pipeline { return p }, cfg)
}

// ReplicationPrimary serves a WAL-backed summary's replication feed over
// HTTP: its snapshot plus the log as a stream of typed, sequence-numbered
// records (DESIGN.md §15). Mount Handler on a private listener; only
// durable (fsync'd) records are ever shipped. See repl.Primary.
type ReplicationPrimary = repl.Primary

// NewReplicationPrimary returns the replication feed over the summary and
// the write-ahead log backing its ingest pipeline.
func NewReplicationPrimary(s *Sharded, w *WAL) *ReplicationPrimary { return repl.NewPrimary(s, w) }

// Follower replicates a primary's summary: boot from a snapshot (or a
// local cache), then tail durable WAL records through the same per-shard
// watermark machinery crash recovery uses — so the replica is provably
// at-a-known-sequence and byte-identical to the primary at that sequence.
// The replicated Summary is safe for concurrent readers throughout. See
// repl.Follower.
type Follower = repl.Follower

// FollowerConfig parameterizes a Follower: the primary's replication URL,
// an optional local snapshot-cache directory, poll/retry cadences, and
// observers for background errors and resync summary swaps.
type FollowerConfig = repl.FollowerConfig

// FollowerStatus is a follower's replication state: applied and primary
// sequence numbers, lag, and the resync count.
type FollowerStatus = repl.Status

// NewFollower validates the configuration and returns an unstarted
// follower; Start performs the boot fetch and launches the tail loop.
func NewFollower(cfg FollowerConfig) (*Follower, error) { return repl.NewFollower(cfg) }

// ReadCache is a watermark-invalidated read cache over a Sharded summary
// (or any rcache.Backend): it memoizes single-shard probe results keyed by
// (shard, probe, shard mutation version), so a hit is provably identical
// to an uncached probe — every applied write advances the shard's version,
// and there are no TTLs. The cache implements the same prober seam the
// query planner runs on, so Do and DoBatch work unchanged on top of it; a
// batch whose probes all hit touches no shard read lock at all. See
// package rcache and DESIGN.md §16.
type ReadCache = rcache.Cache

// ReadCacheConfig parameterizes a ReadCache: the total byte budget split
// across the backend's shards, evicted LRU-first.
type ReadCacheConfig = rcache.Config

// ReadCacheStats is a point-in-time snapshot of a ReadCache's counters.
type ReadCacheStats = rcache.Stats

// NewReadCache returns a read cache over the sharded summary. Queries run
// through the cache (query.Do / query.DoBatch with the cache as prober);
// writes keep going to the summary directly — the per-shard mutation
// version invalidates affected entries automatically.
func NewReadCache(s *Sharded, cfg ReadCacheConfig) (*ReadCache, error) { return rcache.New(s, cfg) }

// Admission is an admission controller for query traffic: queries are
// classified cheap or heavy by planned probe count, each class runs under
// its own concurrency budget with a bounded wait queue, and per-client
// token buckets shed sustained overload. See package admit and
// DESIGN.md §16.
type Admission = admit.Controller

// AdmissionConfig parameterizes an Admission controller: the heavy-class
// probe threshold, per-class concurrency budgets and queue depths, the
// bounded queue wait, and the per-client rate/burst.
type AdmissionConfig = admit.Config

// AdmissionStats is a point-in-time snapshot of an Admission controller's
// counters.
type AdmissionStats = admit.Stats

// Admission rejection errors: ErrOverloaded when a class's queue is full
// (or the wait timed out), ErrRateLimited when a client exhausted its
// token bucket.
var (
	ErrOverloaded  = admit.ErrOverloaded
	ErrRateLimited = admit.ErrRateLimited
)

// NewAdmission validates the configuration (zero values take defaults) and
// returns an admission controller.
func NewAdmission(cfg AdmissionConfig) (*Admission, error) { return admit.New(cfg) }

// Query describes one temporal range query of any kind — edge, vertex
// (out / in), path, subgraph, the delta kinds, heavy hitters, or bursts —
// over closed [Ts, Te] windows; build them with the NewEdgeQuery,
// NewVertexQuery, NewPathQuery, NewSubgraphQuery, NewDeltaVertexQuery,
// NewDeltaEdgeQuery, NewHeavyHittersQuery, and NewBurstQuery constructors.
// Execute via Sharded.Do or, for whole batches answered under at most one
// read-lock acquisition per shard, Sharded.DoBatch (DESIGN.md §11); the
// sketch-served kinds additionally need an Analytics engine (DoBatchWith).
// Its JSON form is the wire format of the server's POST /v2/query
// endpoint. See package query for details.
type Query = query.Query

// Result is the answer to one Query: the estimated aggregated weight
// (never an under-estimate) for the scalar kinds, a ranked Top list for
// the analytics kinds, or the query's validation error.
type Result = query.Result

// QueryEntry is one ranked answer row of an analytics query: the vertex
// (or edge) with its window estimates, delta, and burst score/flag.
type QueryEntry = query.Entry

// QueryKind selects the temporal query kind of a Query. It marshals to
// and from its wire name ("edge", "vertex_out", "vertex_in", "path",
// "subgraph", "delta_vertex", "delta_edge", "heavy_hitters", "burst").
type QueryKind = query.Kind

// The temporal query kinds.
const (
	QueryEdge         = query.KindEdge
	QueryVertexOut    = query.KindVertexOut
	QueryVertexIn     = query.KindVertexIn
	QueryPath         = query.KindPath
	QuerySubgraph     = query.KindSubgraph
	QueryDeltaVertex  = query.KindDeltaVertex
	QueryDeltaEdge    = query.KindDeltaEdge
	QueryHeavyHitters = query.KindHeavyHitters
	QueryBurst        = query.KindBurst
)

// Degree directions for vertex, delta-vertex, and heavy-hitter queries
// (WithDirection).
const (
	DirOut = query.DirOut
	DirIn  = query.DirIn
)

// ParseQueryKind maps a wire name ("edge", "vertex_out", ...) to its kind.
func ParseQueryKind(s string) (QueryKind, error) { return query.ParseKind(s) }

// Window is a closed temporal query window [Ts, Te] (seconds, inclusive on
// both ends). The zero Window is deliberately invalid — a query whose
// window was never set is rejected with a distinct error rather than
// silently answering the weight at instant 0; use Between, or set Ts/Te
// explicitly (a single instant t is Between(t, t)).
type Window struct {
	Ts int64
	Te int64
}

// Between returns the window [ts, te].
func Between(ts, te int64) Window { return Window{Ts: ts, Te: te} }

// QueryOption customizes a query built by the New*Query constructors:
// WithTopK, WithDirection, WithCandidates.
type QueryOption func(*Query)

// WithTopK caps the ranked output of an analytics query at k rows
// (0 selects the default, currently 10; the maximum is 256).
func WithTopK(k int) QueryOption { return func(q *Query) { q.K = k } }

// WithDirection selects the degree direction — DirOut (the default) or
// DirIn — of a vertex, delta-vertex, or heavy-hitter query.
func WithDirection(dir string) QueryOption { return func(q *Query) { q.Dir = dir } }

// WithCandidates sets the candidate vertex set of a delta-vertex query
// built without one. Against higgsd the set may be omitted entirely: the
// server fills it from the analytics engine's tracked heavy hitters.
func WithCandidates(vs []uint64) QueryOption { return func(q *Query) { q.Candidates = vs } }

func applyOptions(q Query, opts []QueryOption) Query {
	for _, o := range opts {
		o(&q)
	}
	return q
}

// NewEdgeQuery returns an edge-weight query for s→d over w.
func NewEdgeQuery(s, d uint64, w Window, opts ...QueryOption) Query {
	return applyOptions(query.NewEdge(s, d, w.Ts, w.Te), opts)
}

// NewVertexQuery returns a vertex-weight query for v over w: outgoing
// weight by default, incoming with WithDirection(DirIn).
func NewVertexQuery(v uint64, w Window, opts ...QueryOption) Query {
	q := applyOptions(query.NewVertexOut(v, w.Ts, w.Te), opts)
	// The scalar vertex kinds carry their direction in the kind itself;
	// fold the option back in and clear the analytics-only field.
	switch q.Dir {
	case DirIn:
		q.Kind = query.KindVertexIn
		q.Dir = ""
	case DirOut:
		q.Dir = ""
	}
	return q
}

// NewPathQuery returns a path-weight query along path over w.
func NewPathQuery(path []uint64, w Window, opts ...QueryOption) Query {
	return applyOptions(query.NewPath(path, w.Ts, w.Te), opts)
}

// NewSubgraphQuery returns a subgraph-weight query over the edge set in w.
func NewSubgraphQuery(edges [][2]uint64, w Window, opts ...QueryOption) Query {
	return applyOptions(query.NewSubgraph(edges, w.Ts, w.Te), opts)
}

// NewDeltaVertexQuery returns a vertex delta query: each candidate's
// degree weight is estimated over both windows and candidates are ranked
// by |weight in compare − weight in base|. Options: WithCandidates (or
// pass the set here), WithDirection, WithTopK.
func NewDeltaVertexQuery(candidates []uint64, base, compare Window, opts ...QueryOption) Query {
	return applyOptions(query.NewDeltaVertex(candidates, base.Ts, base.Te, compare.Ts, compare.Te), opts)
}

// NewDeltaEdgeQuery returns an edge delta query: each candidate edge's
// weight is estimated over both windows and edges are ranked by
// |compare − base|.
func NewDeltaEdgeQuery(edges [][2]uint64, base, compare Window, opts ...QueryOption) Query {
	return applyOptions(query.NewDeltaEdge(edges, base.Ts, base.Te, compare.Ts, compare.Te), opts)
}

// NewHeavyHittersQuery returns a heavy-hitter query: the top-k vertices by
// total admitted out-weight (or in-weight with WithDirection(DirIn)),
// served from an Analytics engine's sketches in O(k) without touching a
// shard.
func NewHeavyHittersQuery(opts ...QueryOption) Query {
	return applyOptions(query.NewHeavyHitters("", 0), opts)
}

// NewBurstQuery returns a burst query: the top-k vertices by rate-of-change
// score over the Analytics engine's recent epochs, each flagged when the
// score clears the burst threshold.
func NewBurstQuery(opts ...QueryOption) Query {
	return applyOptions(query.NewBurst(0), opts)
}

// EdgeQuery returns an edge-weight query for s→d over [ts, te].
//
// Deprecated: use NewEdgeQuery with a Window.
func EdgeQuery(s, d uint64, ts, te int64) Query { return NewEdgeQuery(s, d, Between(ts, te)) }

// VertexOutQuery returns an outgoing vertex-weight query for v over [ts, te].
//
// Deprecated: use NewVertexQuery with a Window.
func VertexOutQuery(v uint64, ts, te int64) Query { return NewVertexQuery(v, Between(ts, te)) }

// VertexInQuery returns an incoming vertex-weight query for v over [ts, te].
//
// Deprecated: use NewVertexQuery with a Window and WithDirection(DirIn).
func VertexInQuery(v uint64, ts, te int64) Query {
	return NewVertexQuery(v, Between(ts, te), WithDirection(DirIn))
}

// PathQuery returns a path-weight query along path over [ts, te].
//
// Deprecated: use NewPathQuery with a Window.
func PathQuery(path []uint64, ts, te int64) Query { return NewPathQuery(path, Between(ts, te)) }

// SubgraphQuery returns a subgraph-weight query over the edge set in [ts, te].
//
// Deprecated: use NewSubgraphQuery with a Window.
func SubgraphQuery(edges [][2]uint64, ts, te int64) Query {
	return NewSubgraphQuery(edges, Between(ts, te))
}

// Analytics is the stream-analytics engine (DESIGN.md §17): per-shard
// count-min sketches plus bounded candidate sets, maintained inside the
// same write-lock sections that apply edges to the summary, answering
// heavy-hitter and burst queries in O(k) without touching a shard lock.
// Attach one to a Sharded summary with SetApplyObserver; higgsd wires this
// up under -analytics.
type Analytics = analytics.Engine

// AnalyticsConfig parameterizes an Analytics engine: sketch geometry,
// tracked-candidate budget, and the burst epoch ring. The zero value of
// every knob selects a documented default; Shards and Seed must match the
// summary the engine observes.
type AnalyticsConfig = analytics.Config

// AnalyticsStats is a point-in-time snapshot of an Analytics engine's
// counters, as reported under /healthz's "analytics" field.
type AnalyticsStats = analytics.Stats

// NewAnalytics validates the configuration and returns an engine. Register
// it on the summary it should observe:
//
//	eng, _ := higgs.NewAnalytics(cfg)
//	sum.SetApplyObserver(eng)
//
// and answer sketch-served queries via DoBatchWith (or the engine's
// HeavyHitters / Bursts methods directly).
func NewAnalytics(cfg AnalyticsConfig) (*Analytics, error) { return analytics.New(cfg) }

// QueryProber is the planner seam every query executes through: a Sharded
// summary, or a ReadCache over one.
type QueryProber = query.Prober

// DoBatchWith answers the batch over the prober — at most one read-lock
// acquisition per shard, exactly like Sharded.DoBatch — with the analytics
// engine serving the sketch kinds (heavy_hitters, burst). With a nil
// engine those kinds fail per item with a stable "analytics_disabled"
// code; the scalar and delta kinds are unaffected.
func DoBatchWith(p QueryProber, a *Analytics, qs []Query) []Result {
	if a == nil {
		return query.DoBatchWith(p, nil, qs)
	}
	return query.DoBatchWith(p, a, qs)
}
