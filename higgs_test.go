package higgs_test

import (
	"bytes"
	"testing"

	"higgs"
)

func TestFacadeQuickstart(t *testing.T) {
	s, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(higgs.Edge{S: 1, D: 2, W: 3, T: 100})
	s.Insert(higgs.Edge{S: 1, D: 2, W: 4, T: 200})
	s.Insert(higgs.Edge{S: 2, D: 3, W: 5, T: 300})
	if got := s.EdgeWeight(1, 2, 0, 250); got != 7 {
		t.Errorf("EdgeWeight = %d, want 7", got)
	}
	if got := s.VertexOut(1, 0, 400); got != 7 {
		t.Errorf("VertexOut = %d, want 7", got)
	}
	if got := s.PathWeight([]uint64{1, 2, 3}, 0, 400); got != 12 {
		t.Errorf("PathWeight = %d, want 12", got)
	}
}

func TestFacadeFromStream(t *testing.T) {
	st, err := higgs.GenerateStream(higgs.StreamConfig{
		Nodes: 50, Edges: 2000, Span: 10000, Skew: 2.0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := higgs.FromStream(higgs.DefaultConfig(), st)
	if err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.Items != 2000 {
		t.Errorf("Items = %d", stats.Items)
	}
	if stats.SpaceBytes <= 0 {
		t.Error("space accounting missing")
	}
}

func TestFacadeSnapshot(t *testing.T) {
	s, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Insert(higgs.Edge{S: 1, D: 2, W: 3, T: 100})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := higgs.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := loaded.EdgeWeight(1, 2, 0, 200); got != 3 {
		t.Errorf("loaded EdgeWeight = %d, want 3", got)
	}
}

func TestFacadeRejectsBadConfig(t *testing.T) {
	cfg := higgs.DefaultConfig()
	cfg.Theta = 3
	if _, err := higgs.New(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := higgs.FromStream(cfg, nil); err == nil {
		t.Fatal("FromStream accepted invalid config")
	}
}
