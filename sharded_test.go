package higgs_test

import (
	"bytes"
	"sync"
	"testing"

	"higgs"
)

func TestShardedFacade(t *testing.T) {
	s, err := higgs.NewSharded(higgs.DefaultShardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Insert(higgs.Edge{S: 1, D: 2, W: 3, T: 100})
	s.Insert(higgs.Edge{S: 1, D: 2, W: 4, T: 200})
	s.Insert(higgs.Edge{S: 2, D: 3, W: 5, T: 300})
	if got := s.EdgeWeight(1, 2, 0, 250); got != 7 {
		t.Errorf("EdgeWeight = %d, want 7", got)
	}
	if got := s.VertexIn(3, 0, 400); got != 5 {
		t.Errorf("VertexIn = %d, want 5", got)
	}
	if got := s.PathWeight([]uint64{1, 2, 3}, 0, 400); got != 12 {
		t.Errorf("PathWeight = %d, want 12", got)
	}
	if st := s.Stats(); st.Total.Items != 3 || st.Shards != 4 {
		t.Errorf("Stats = %+v", st)
	}
}

// TestShardedFacadeConcurrent: the public sharded type is safe for
// concurrent writers and readers (run with -race).
func TestShardedFacadeConcurrent(t *testing.T) {
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 8
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Insert(higgs.Edge{S: uint64(w*1000 + i), D: uint64(i), W: 1, T: int64(i)})
				_ = s.VertexIn(uint64(i), 0, 1000)
			}
		}(w)
	}
	wg.Wait()
	if got := s.Items(); got != 2000 {
		t.Fatalf("Items = %d, want 2000", got)
	}
}

func TestShardedFacadeSnapshot(t *testing.T) {
	s, err := higgs.NewSharded(higgs.DefaultShardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Insert(higgs.Edge{S: 1, D: 2, W: 3, T: 100})
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := higgs.LoadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.EdgeWeight(1, 2, 0, 200); got != 3 {
		t.Fatalf("EdgeWeight after reload = %d, want 3", got)
	}

	// Unsharded snapshots load too.
	un, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	un.Insert(higgs.Edge{S: 4, D: 5, W: 6, T: 10})
	buf.Reset()
	if _, err := un.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	adopted, err := higgs.LoadSharded(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer adopted.Close()
	if adopted.NumShards() != 1 {
		t.Fatalf("adopted shards = %d, want 1", adopted.NumShards())
	}
	if got := adopted.EdgeWeight(4, 5, 0, 20); got != 6 {
		t.Fatalf("adopted EdgeWeight = %d, want 6", got)
	}
}
