package higgs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"higgs"
)

// TestWALFacadeCrashRecovery drives the whole durability surface through
// the public API: a WAL-backed pipeline accepts edges, the process
// "crashes" (no flush, the summary is discarded), and OpenWAL + Recover
// rebuilds a summary answering identically.
func TestWALFacadeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	w, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	icfg := higgs.DefaultIngestConfig()
	icfg.Mode = higgs.IngestAsync
	icfg.WAL = w
	p, err := higgs.NewIngest(crashed, icfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := []higgs.Edge{
		{S: 1, D: 2, W: 3, T: 10}, {S: 2, D: 3, W: 5, T: 20}, {S: 1, D: 2, W: 4, T: 30},
	}
	if _, err := p.Submit(edges); err != nil {
		t.Fatal(err)
	}
	// Crash: reclaim the goroutines and file handle, discard the summary.
	// Every accepted batch was fsync'd before Submit returned.
	p.Close()
	crashed.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	replayed, err := higgs.Recover(recovered, w2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != int64(len(edges)) {
		t.Fatalf("replayed %d edges, want %d", replayed, len(edges))
	}
	if got := recovered.EdgeWeight(1, 2, 0, 100); got != 7 {
		t.Fatalf("recovered edge 1→2 weight = %d, want 7", got)
	}
	if got := recovered.EdgeWeight(2, 3, 0, 100); got != 5 {
		t.Fatalf("recovered edge 2→3 weight = %d, want 5", got)
	}
}

// TestWALFacadeSnapshotter exercises the public snapshot/truncate loop:
// Snap writes an atomic snapshot that LoadSharded restores, and recovery
// onto it replays only the tail.
func TestWALFacadeSnapshotter(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snapshot.higgs")
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	w, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	icfg := higgs.DefaultIngestConfig()
	icfg.WAL = w
	p, err := higgs.NewIngest(s, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Submit([]higgs.Edge{{S: 1, D: 2, W: 3, T: 10}}); err != nil {
		t.Fatal(err)
	}
	snapper := higgs.NewSnapshotter(s, p, w, snapPath, 0, nil)
	if err := snapper.Snap(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit([]higgs.Edge{{S: 2, D: 3, W: 5, T: 20}}); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := higgs.LoadSharded(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Items(); got != 1 {
		t.Fatalf("snapshot items = %d, want 1 (taken before the second submit)", got)
	}
	replayed, err := higgs.Recover(loaded, w)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d edges onto the snapshot, want exactly the 1-edge tail", replayed)
	}
	if got := loaded.EdgeWeight(2, 3, 0, 100); got != 5 {
		t.Fatalf("recovered tail edge weight = %d, want 5", got)
	}
}
