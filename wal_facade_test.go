package higgs_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"higgs"
)

// TestWALFacadeCrashRecovery drives the whole durability surface through
// the public API: a WAL-backed pipeline accepts edges, the process
// "crashes" (no flush, the summary is discarded), and OpenWAL + Recover
// rebuilds a summary answering identically.
func TestWALFacadeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	w, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	icfg := higgs.DefaultIngestConfig()
	icfg.Mode = higgs.IngestAsync
	icfg.WAL = w
	p, err := higgs.NewIngest(crashed, icfg)
	if err != nil {
		t.Fatal(err)
	}
	edges := []higgs.Edge{
		{S: 1, D: 2, W: 3, T: 10}, {S: 2, D: 3, W: 5, T: 20}, {S: 1, D: 2, W: 4, T: 30},
	}
	if _, err := p.Submit(edges); err != nil {
		t.Fatal(err)
	}
	// Crash: reclaim the goroutines and file handle, discard the summary.
	// Every accepted batch was fsync'd before Submit returned.
	p.Close()
	crashed.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	replayed, err := higgs.Recover(recovered, w2)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != int64(len(edges)) {
		t.Fatalf("replayed %d edges, want %d", replayed, len(edges))
	}
	if got := recovered.EdgeWeight(1, 2, 0, 100); got != 7 {
		t.Fatalf("recovered edge 1→2 weight = %d, want 7", got)
	}
	if got := recovered.EdgeWeight(2, 3, 0, 100); got != 5 {
		t.Fatalf("recovered edge 2→3 weight = %d, want 5", got)
	}
}

// TestWALFacadeDurableExpire drives durable retention through the public
// API: Ingest.Expire on a WAL-backed pipeline survives a crash (recovery
// does not resurrect the expired edges), direct Sharded.Expire on the
// WAL-owned summary panics, and the Retainer ticks through the same path.
func TestWALFacadeDurableExpire(t *testing.T) {
	dir := t.TempDir()
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	build := func(walDir string, mode higgs.IngestMode) (*higgs.Sharded, *higgs.Ingest, *higgs.WAL) {
		t.Helper()
		w, err := higgs.OpenWAL(higgs.WALConfig{Dir: walDir})
		if err != nil {
			t.Fatal(err)
		}
		s, err := higgs.NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		icfg := higgs.DefaultIngestConfig()
		icfg.Mode = mode
		icfg.WAL = w
		p, err := higgs.NewIngest(s, icfg)
		if err != nil {
			t.Fatal(err)
		}
		return s, p, w
	}
	feed := func(p *higgs.Ingest) int64 {
		t.Helper()
		batch := make([]higgs.Edge, 3000)
		for i := range batch {
			batch[i] = higgs.Edge{S: uint64(i % 50), D: uint64(i%50 + 1), W: 1, T: int64(i)}
		}
		if _, err := p.Submit(batch); err != nil {
			t.Fatal(err)
		}
		dropped, err := p.Expire(1500)
		if err != nil {
			t.Fatal(err)
		}
		if dropped <= 0 {
			t.Fatalf("Expire dropped %d leaves, want > 0", dropped)
		}
		return dropped
	}

	crashed, p, w := build(dir, higgs.IngestAsync)
	feed(p)
	// Direct expire on the WAL-owned summary is a programming error the
	// facade documents: it must panic, not silently de-synchronize.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("direct Sharded.Expire on a WAL-owned summary did not panic")
			}
		}()
		crashed.Expire(1500)
	}()
	var want bytes.Buffer
	p.Flush()
	if _, err := crashed.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	p.Close()
	crashed.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	recovered, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if _, err := higgs.Recover(recovered, w2); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := recovered.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("recovery diverged from the live post-expire state (%d vs %d bytes): expired edges resurrected",
			got.Len(), want.Len())
	}
}

// TestRetainerFacade runs the public retention loop against a pipeline
// with a pinned clock.
func TestRetainerFacade(t *testing.T) {
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := higgs.NewIngest(s, higgs.DefaultIngestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	batch := make([]higgs.Edge, 3000)
	for i := range batch {
		batch[i] = higgs.Edge{S: uint64(i % 50), D: uint64(i%50 + 1), W: 1, T: int64(i)}
	}
	if _, err := p.Submit(batch); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	r, err := higgs.NewRetainer(p, higgs.RetentionConfig{
		Window: 100 * time.Second,
		Now:    func() time.Time { return time.Unix(3100, 0) }, // cutoff 3000
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	dropped, err := r.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if dropped <= 0 || r.Dropped() != dropped || r.Runs() != 1 {
		t.Fatalf("retainer tick: dropped = %d, counters runs=%d dropped=%d", dropped, r.Runs(), r.Dropped())
	}
}

// TestWALFacadeSnapshotter exercises the public snapshot/truncate loop:
// Snap writes an atomic snapshot that LoadSharded restores, and recovery
// onto it replays only the tail.
func TestWALFacadeSnapshotter(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snapshot.higgs")
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	w, err := higgs.OpenWAL(higgs.WALConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	icfg := higgs.DefaultIngestConfig()
	icfg.WAL = w
	p, err := higgs.NewIngest(s, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if _, err := p.Submit([]higgs.Edge{{S: 1, D: 2, W: 3, T: 10}}); err != nil {
		t.Fatal(err)
	}
	snapper := higgs.NewSnapshotter(s, p, w, snapPath, 0, nil)
	if err := snapper.Snap(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit([]higgs.Edge{{S: 2, D: 3, W: 5, T: 20}}); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := higgs.LoadSharded(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if got := loaded.Items(); got != 1 {
		t.Fatalf("snapshot items = %d, want 1 (taken before the second submit)", got)
	}
	replayed, err := higgs.Recover(loaded, w)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 1 {
		t.Fatalf("replayed %d edges onto the snapshot, want exactly the 1-edge tail", replayed)
	}
	if got := loaded.EdgeWeight(2, 3, 0, 100); got != 5 {
		t.Fatalf("recovered tail edge weight = %d, want 5", got)
	}
}
