package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"higgs/internal/vetrules"
)

// vetConfig mirrors the subset of cmd/go/internal/work.vetConfig that
// higgsvet consumes. cmd/go writes one such JSON file per package into the
// work directory and invokes the vet tool with its path.
type vetConfig struct {
	ID          string            // package ID ("higgs/internal/shard [higgs/internal/shard.test]")
	Compiler    string            // "gc" or "gccgo"
	Dir         string            // package directory
	ImportPath  string            // canonical import path
	GoVersion   string            // language version for typechecking
	GoFiles     []string          // absolute paths of Go sources
	ImportMap   map[string]string // source import path -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool   // canonical package path -> in std

	VetxOnly   bool   // dependency run: compute facts only, report nothing
	VetxOutput string // where to write facts for downstream packages

	SucceedOnTypecheckFailure bool // cgo-affected packages: skip quietly
}

// runUnit analyzes the single package described by the vet.cfg file at
// cfgPath and returns the process exit code: 0 clean, 1 on findings,
// 2 on protocol or typechecking failure.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsvet: reading %s: %v\n", cfgPath, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "higgsvet: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// higgsvet has no cross-package facts, but cmd/go expects the vetx
	// output file to exist so it can cache the (empty) result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "higgsvet: writing vetx output: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// ParseComments is required: suppressions live in comments.
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "higgsvet: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "higgsvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	findings, err := vetrules.RunPackage(fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsvet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// typecheck type-checks the parsed package against the compiler export
// data cmd/go listed in the config, the same way x/tools' unitchecker
// does: imports resolve through ImportMap to PackageFile entries.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(importPath string) (io.ReadCloser, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			// Self-contained packages may import paths cmd/go saw no need
			// to map; try the literal path.
			path = importPath
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: strings.TrimPrefix(cfg.GoVersion, "v"),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
