// Command higgsvet is the repository's custom static-analysis suite
// (DESIGN.md §18). It mechanically enforces the concurrency and API
// invariants that the design docs state in prose: version-fence
// maintenance in shard write sections, lock hold-time discipline,
// sync.Pool ownership, the httpapi JSON error envelope, and
// WAL-before-apply ordering on the ingest path.
//
// It runs two ways:
//
//	go vet -vettool=$(which higgsvet) ./...   # as a vet tool
//	go run ./cmd/higgsvet ./...               # standalone (re-execs go vet)
//
// As a vet tool it speaks cmd/go's unitchecker protocol: it answers
// -V=full with a content-addressed build ID, answers -flags with a JSON
// flag description, and analyzes each package from the vet.cfg file
// cmd/go hands it (typechecking against the compiler's export data, so
// no source beyond the target package is re-parsed).
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"higgs/internal/vetrules"
)

func main() {
	args := os.Args[1:]
	// Single-purpose protocol queries from cmd/go.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			// higgsvet takes no flags; an empty JSON array tells cmd/go so.
			fmt.Println("[]")
			return
		case args[0] == "help" || args[0] == "-help" || args[0] == "--help":
			printHelp()
			return
		}
	}
	// A vet.cfg argument means cmd/go is driving us over one package.
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			os.Exit(runUnit(a))
		}
	}
	os.Exit(standalone(args))
}

// printVersion implements the -V=full handshake cmd/go uses to fingerprint
// the vet tool for its build cache (cmd/go/internal/work.(*Builder).toolID
// requires `<name> version devel ... buildID=<hex>` for non-release tools).
// The build ID is the hash of this executable, so editing an analyzer
// invalidates cached vet results.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", name, id)
}

func printHelp() {
	fmt.Println("higgsvet: static enforcement of this repository's concurrency and API invariants (DESIGN.md §18)")
	fmt.Println()
	fmt.Println("usage: go vet -vettool=$(which higgsvet) ./...")
	fmt.Println("       go run ./cmd/higgsvet [packages]   (defaults to ./...)")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range vetrules.All() {
		summary, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Printf("  %-12s %s\n", a.Name, summary)
	}
	fmt.Println()
	fmt.Println("suppress a reviewed exception with: //higgsvet:ignore <analyzer> <reason>")
}

// standalone re-execs `go vet -vettool=<this binary> <patterns>` so that
// cmd/go does the package loading, dependency export data, and caching —
// the tool then re-enters above via the vet.cfg path, once per package.
func standalone(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsvet: cannot locate own executable: %v\n", err)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "higgsvet: %v\n", err)
		return 1
	}
	return 0
}
