package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles higgsvet into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "higgsvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building higgsvet: %v\n%s", err, out)
	}
	return bin
}

// TestVettoolProtocol drives the built tool through cmd/go exactly the
// way CI does — the -V=full fingerprint, the -flags handshake, and the
// vet.cfg unit-checker path — over a package that must be higgsvet-clean.
// The analyzers themselves are covered by the fixture tests in
// internal/vetrules; this test pins the driver plumbing.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the tool and re-execs the go toolchain")
	}
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	f := strings.Fields(string(out))
	// cmd/go's toolID parser requires: >= 3 fields, f[1] == "version", and
	// for a "devel" version a final buildID= field.
	if len(f) < 3 || f[1] != "version" || !strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("-V=full output would fail cmd/go's toolID parser: %q", string(out))
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags must print an empty JSON array, got %q", string(out))
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "higgs/internal/rcache")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over a clean package failed: %v\n%s", err, out)
	}
}

// TestStandaloneMode pins the `go run ./cmd/higgsvet <pkg>` entry point:
// the tool re-execs go vet against itself and propagates the exit code.
func TestStandaloneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the tool and re-execs the go toolchain")
	}
	bin := buildTool(t)
	if out, err := exec.Command(bin, "higgs/internal/rcache").CombinedOutput(); err != nil {
		t.Fatalf("standalone run over a clean package failed: %v\n%s", err, out)
	}
}

// TestHelpListsAllAnalyzers keeps the help text in sync with the suite.
func TestHelpListsAllAnalyzers(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds the tool")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin, "help").Output()
	if err != nil {
		t.Fatalf("help: %v", err)
	}
	for _, name := range []string{"lockversion", "lockscope", "poolput", "envelope", "wallorder"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("help output does not mention analyzer %q", name)
		}
	}
}
