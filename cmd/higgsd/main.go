// Command higgsd serves a sharded HIGGS summary over HTTP — a minimal
// graph stream summarization service.
//
//	higgsd -addr :8080
//	higgsd -addr :8080 -shards 8 -load summary.higgs -save summary.higgs
//	higgsd -ingest-mode async -queue-depth 8192 -commit-interval 2ms
//
// The summary is hash-partitioned by source vertex across -shards
// independent HIGGS trees (0 = one per CPU), so concurrent inserts and
// queries touching different shards never contend; see internal/shard.
// Writes POSTed to /v1/ingest go through the asynchronous group-commit
// pipeline (internal/ingest, DESIGN.md §9) configured by -ingest-mode,
// -queue-depth, and -commit-interval; /v1/insert stays synchronous.
//
// API (see internal/server and README "Running the server"):
//
//	POST /v1/insert    [{"s":1,"d":2,"w":1,"t":100}, ...]   (synchronous)
//	POST /v1/ingest    [{"s":1,"d":2,"w":1,"t":100}, ...]   (202/429, group commit)
//	POST /v1/flush     (barrier: 202-accepted edges become visible)
//	POST /v1/expire    {"cutoff":100}   (sequenced, WAL-logged retention)
//	POST /v1/delete    {"s":1,"d":2,"w":1,"t":100}
//	GET  /v1/edge?s=1&d=2&ts=0&te=200
//	GET  /v1/vertex?v=1&dir=out&ts=0&te=200
//	GET  /v1/path?v=1,2,3&ts=0&te=200
//	POST /v1/subgraph  {"edges":[[1,2],[2,3]],"ts":0,"te":200}
//	POST /v2/query     [{"kind":"edge","s":1,"d":2,"ts":0,"te":200}, ...]
//	                   (batch: ≤ 1 read-lock acquisition per shard, per-item errors)
//	GET  /healthz      (load-balancer probe: shard count + ingest mode, no locks)
//	GET  /v1/stats
//	GET  /v1/snapshot  (binary download)   POST /v1/snapshot (restore)
//
// Snapshots are written in the sharded framing; -load also accepts legacy
// unsharded snapshots, which come up as a single shard.
//
// Durability (DESIGN.md §12): with -wal-dir, /v1/ingest appends every
// accepted batch to a segmented write-ahead log in that directory and
// fsyncs before responding 202, so accepted edges survive a crash — not
// just an orderly shutdown. -snapshot-interval adds periodic background
// snapshots (written atomically to <wal-dir>/snapshot.higgs) after which
// the log's covered segments are truncated. On startup higgsd recovers by
// loading the latest snapshot and replaying the log tail. The WAL owns the
// durable state: -load is rejected alongside -wal-dir, and POST
// /v1/snapshot answers 409.
//
//	higgsd -wal-dir /var/lib/higgs -snapshot-interval 30s
//
// Retention (DESIGN.md §13): -retention-window runs a background loop
// expiring everything older than now−window every -retention-interval
// (default window/10). Expires go through the ingest pipeline, so they
// are sequenced against in-flight batches and — with -wal-dir — recorded
// in the log and fsync'd: crash recovery replays them at exactly their
// point in the stream, and expired edges stay expired. /healthz reports
// the loop's counters in its "retention" field.
//
//	higgsd -wal-dir /var/lib/higgs -retention-window 24h -retention-interval 1m
//
// Read caching & admission control (DESIGN.md §16): -cache-bytes installs
// a watermark-invalidated read cache on the query planner seam — repeated
// probes against unmutated shards are answered without taking any shard
// read lock, and every applied write advances the shard's mutation version
// so a hit is provably identical to an uncached probe (no TTLs).
// -admit-heavy and -admit-rate enable admission control above the planner:
// queries are classified cheap/heavy by planned probe count, each class
// runs under its own concurrency budget with a bounded wait queue, and
// per-client token buckets shed sustained overload with 429 + Retry-After.
// /healthz reports both subsystems' counters.
//
//	higgsd -cache-bytes 67108864 -admit-heavy 4 -admit-rate 200
//
// Stream analytics (DESIGN.md §17): -analytics maintains per-shard
// count-min sketches and bounded candidate sets inside the committer apply
// path — every write entry point (sync insert, group commit, WAL replay,
// replication apply, delete) updates them under the same shard write lock
// that applies the edges, so the sketches can never drift from the served
// summary. They answer four additional /v2/query kinds: "heavy_hitters"
// and "burst" in O(k) without touching a shard lock, and "delta_vertex" /
// "delta_edge" (two-window change ranking) through the normal batch
// planner, read cache, and admission control. -analytics-topk sizes the
// tracked candidate sets, -analytics-epoch and -analytics-burst tune burst
// detection. /healthz reports the engine's counters in its "analytics"
// field. Works on primaries and followers alike.
//
//	higgsd -analytics -analytics-topk 256 -analytics-epoch 30s -analytics-burst 8
//
// Replication (DESIGN.md §15): -replication-addr serves the WAL-shipping
// feed (/repl/info, /repl/snapshot, /repl/wal) on a separate, private
// listener. A follower started with -replicate-from boots from the
// primary's snapshot (or its -replica-dir local cache), tails durable
// records, and serves every read endpoint — /v1 queries, /v2/query,
// snapshot download — while answering 403 on writes. /healthz reports
// role, applied sequence, and lag in its "replication" field.
//
//	higgsd -wal-dir /var/lib/higgs -replication-addr 127.0.0.1:9090
//	higgsd -addr :8081 -replicate-from http://127.0.0.1:9090 -replica-dir /var/lib/higgs-replica
//
// On SIGINT/SIGTERM the server stops accepting connections, drains the
// ingest pipeline (every 202-accepted batch is applied), writes a final
// snapshot into -wal-dir (truncating the log), and, if -save is set,
// writes a snapshot there too — so accepted edges survive an orderly
// shutdown even without a WAL.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux, served only on -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"higgs/internal/admit"
	"higgs/internal/analytics"
	"higgs/internal/ingest"
	"higgs/internal/repl"
	"higgs/internal/server"
	"higgs/internal/shard"
	"higgs/internal/wal"
)

// snapshotName is the snapshot file maintained inside -wal-dir.
const snapshotName = "snapshot.higgs"

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		shards  = flag.Int("shards", 0, "summary shard count (0 = one per CPU)")
		load    = flag.String("load", "", "snapshot file to restore at startup")
		save    = flag.String("save", "", "snapshot file to write on shutdown")
		mode    = flag.String("ingest-mode", "auto", `/v1/ingest admission: "sync", "async", or "auto"`)
		depth   = flag.Int("queue-depth", 4096, "per-shard async ingest queue capacity (edges)")
		commit  = flag.Duration("commit-interval", 0, "group-commit accumulation window (0 = apply as soon as possible)")
		walDir  = flag.String("wal-dir", "", "durable state directory: write-ahead log segments + snapshot.higgs (empty = no crash durability)")
		walSync = flag.Duration("wal-sync-interval", 0, "WAL group-fsync accumulation window — bounds how long a 202 waits for its fsync (0 = sync as soon as dirty)")
		snapIvl = flag.Duration("snapshot-interval", 0, "background snapshot cadence; requires -wal-dir (0 = snapshot only on shutdown)")
		retWin  = flag.Duration("retention-window", 0, "sliding retention window: periodically expire edges older than now minus this (0 = keep everything)")
		retIvl  = flag.Duration("retention-interval", 0, "retention loop cadence; requires -retention-window (0 = window/10, at least 1s)")
		pprof   = flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled); keep it private — profiles expose internals")

		replAddr   = flag.String("replication-addr", "", "serve the WAL-shipping replication feed (/repl/*) on this address; requires -wal-dir (empty = disabled); keep it private — it ships the raw log")
		replFrom   = flag.String("replicate-from", "", "run as a read-only follower of this primary replication URL (e.g. http://primary:9090): reads served, writes answer 403")
		replicaDir = flag.String("replica-dir", "", "follower state directory holding the local snapshot cache, so restarts resume from disk; requires -replicate-from")

		anaOn    = flag.Bool("analytics", false, "enable the stream-analytics subsystem: heavy-hitter/burst sketches maintained in the committer apply path, served by the delta_vertex/delta_edge/heavy_hitters/burst kinds of /v2/query (DESIGN.md §17)")
		anaTopK  = flag.Int("analytics-topk", 0, "tracked heavy-hitter candidates per shard and direction (0 = 128); requires -analytics")
		anaEpoch = flag.Duration("analytics-epoch", 0, "burst-detection epoch length, whole seconds (0 = 1m); requires -analytics")
		anaBurst = flag.Float64("analytics-burst", 0, "burst threshold: flag a vertex when its current-epoch weight reaches this multiple of its recent-epoch average (0 = 4.0); requires -analytics")

		cacheBytes = flag.Int64("cache-bytes", 0, "watermark-invalidated read cache byte budget across all shards (0 = disabled, minimum 64KiB)")
		admitHeavy = flag.Int("admit-heavy", 0, "concurrent heavy-query budget; enables admission control (0 = class budgets at defaults unless -admit-rate set)")
		admitRate  = flag.Float64("admit-rate", 0, "per-client sustained queries/sec token-bucket rate; enables admission control (0 = no per-client rate limit)")
		version    = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("higgsd %s\n", server.BuildVersion())
		return
	}

	imode, err := ingest.ParseMode(*mode)
	if err != nil {
		log.Fatalf("higgsd: -ingest-mode: %v", err)
	}
	if *depth <= 0 {
		// Config treats 0 as "use the default"; an operator passing 0
		// expects no buffering, which the pipeline does not offer.
		log.Fatalf("higgsd: -queue-depth %d, need ≥ 1", *depth)
	}
	switch {
	case *snapIvl < 0:
		log.Fatalf("higgsd: -snapshot-interval %v, need ≥ 0", *snapIvl)
	case *walSync < 0:
		log.Fatalf("higgsd: -wal-sync-interval %v, need ≥ 0", *walSync)
	case *walDir != "" && *load != "":
		log.Fatal("higgsd: -load conflicts with -wal-dir (the WAL directory owns its snapshot; remove -load)")
	case *retWin < 0:
		log.Fatalf("higgsd: -retention-window %v, need ≥ 0", *retWin)
	case *retIvl < 0:
		log.Fatalf("higgsd: -retention-interval %v, need ≥ 0", *retIvl)
	case *retIvl > 0 && *retWin == 0:
		log.Fatal("higgsd: -retention-interval requires -retention-window")
	case *replAddr != "" && *walDir == "":
		log.Fatal("higgsd: -replication-addr requires -wal-dir (the feed ships the write-ahead log)")
	case *replicaDir != "" && *replFrom == "":
		log.Fatal("higgsd: -replica-dir requires -replicate-from")
	case *replFrom != "" && *walDir != "":
		log.Fatal("higgsd: -replicate-from conflicts with -wal-dir (a follower's durable state is its primary; use -replica-dir for the local cache)")
	case *replFrom != "" && *load != "":
		log.Fatal("higgsd: -replicate-from conflicts with -load (the boot snapshot comes from the primary)")
	case *replFrom != "" && *shards != 0:
		log.Fatal("higgsd: -replicate-from conflicts with -shards (the primary's snapshot fixes the shard count)")
	case *replFrom != "" && *retWin > 0:
		log.Fatal("higgsd: -replicate-from conflicts with -retention-window (retention runs on the primary and replicates as expire records)")
	case *replFrom != "" && *replAddr != "":
		log.Fatal("higgsd: -replicate-from conflicts with -replication-addr (chained replication is not supported)")
	case *snapIvl > 0 && *walDir == "" && *replicaDir == "":
		log.Fatal("higgsd: -snapshot-interval requires -wal-dir (or -replica-dir on a follower)")
	case *cacheBytes < 0:
		log.Fatalf("higgsd: -cache-bytes %d, need ≥ 0", *cacheBytes)
	case *admitHeavy < 0:
		log.Fatalf("higgsd: -admit-heavy %d, need ≥ 0", *admitHeavy)
	case *admitRate < 0:
		log.Fatalf("higgsd: -admit-rate %v, need ≥ 0", *admitRate)
	case !*anaOn && (*anaTopK != 0 || *anaEpoch != 0 || *anaBurst != 0):
		log.Fatal("higgsd: -analytics-topk/-analytics-epoch/-analytics-burst require -analytics")
	case *anaTopK < 0:
		log.Fatalf("higgsd: -analytics-topk %d, need ≥ 0", *anaTopK)
	case *anaEpoch != 0 && *anaEpoch < time.Second:
		log.Fatalf("higgsd: -analytics-epoch %v, need whole seconds ≥ 1s (or 0 for the default)", *anaEpoch)
	case *anaBurst != 0 && *anaBurst < 1:
		log.Fatalf("higgsd: -analytics-burst %v, need ≥ 1 (or 0 for the default)", *anaBurst)
	}

	var anaCfg *analytics.Config
	if *anaOn {
		anaCfg = &analytics.Config{
			TrackK:       *anaTopK,
			EpochSeconds: int64(*anaEpoch / time.Second),
			BurstFactor:  *anaBurst,
		}
	}

	if *replFrom != "" {
		runFollower(*addr, *replFrom, *replicaDir, *snapIvl, *save, *pprof, *cacheBytes, *admitHeavy, *admitRate, anaCfg)
		return
	}
	icfg := ingest.DefaultConfig()
	icfg.Mode = imode
	icfg.QueueDepth = *depth
	icfg.CommitInterval = *commit

	var (
		sum   *shard.Summary
		wlog  *wal.Log
		eng   *analytics.Engine
		snapP string
	)
	if *walDir != "" {
		// Recovery: latest snapshot + WAL tail replay (DESIGN.md §12).
		snapP = filepath.Join(*walDir, snapshotName)
		sum, err = loadOrNewSummary(snapP, *shards)
		if err != nil {
			log.Fatalf("higgsd: %v", err)
		}
		if anaCfg != nil {
			// The engine observes the summary from before the WAL replay, so
			// the sketches absorb recovered edges exactly like live ones
			// (DESIGN.md §17). The server adopts it after construction.
			acfg := *anaCfg
			acfg.Shards = sum.NumShards()
			acfg.Seed = sum.Config().Core.Seed
			if eng, err = analytics.New(acfg); err != nil {
				log.Fatalf("higgsd: analytics: %v", err)
			}
			sum.SetApplyObserver(eng)
		}
		// The WAL group-syncs on its own cadence (-wal-sync-interval): one
		// fsync covers everything accepted during the accumulation window,
		// mirroring the role -commit-interval plays for shard locks. The
		// two are separate knobs because every 202 waits for its covering
		// fsync — a long commit window must not hold admission hostage.
		wlog, err = wal.Open(wal.Config{Dir: *walDir, SyncInterval: *walSync})
		if err != nil {
			log.Fatalf("higgsd: %v", err)
		}
		replayed, err := ingest.Recover(sum, wlog)
		if err != nil {
			log.Fatalf("higgsd: %v", err)
		}
		log.Printf("higgsd: recovered from %s (items=%d, wal replayed %d edges)",
			*walDir, sum.Items(), replayed)
		icfg.WAL = wlog
	} else if sum, err = buildSummary(*load, *shards); err != nil {
		log.Fatalf("higgsd: %v", err)
	}

	srv, err := server.NewWithIngest(sum, icfg)
	if err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	if err := setupReadPath(srv, *cacheBytes, *admitHeavy, *admitRate); err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	if anaCfg != nil {
		if eng != nil {
			srv.SetAnalyticsEngine(eng) // the WAL-recovery engine already observes sum
		} else if err := srv.SetAnalytics(*anaCfg); err != nil {
			log.Fatalf("higgsd: analytics: %v", err)
		}
		logAnalytics(anaCfg)
	}
	var snapper *ingest.Snapshotter
	if wlog != nil {
		snapper = ingest.NewSnapshotter(sum, srv.Pipeline(), wlog, snapP, *snapIvl,
			func(err error) { log.Printf("higgsd: background snapshot: %v", err) })
		snapper.Start()
		srv.SetDurability(func() server.DurabilityStatus {
			st := server.DurabilityStatus{
				WAL:         true,
				AppendedSeq: wlog.LastSeq(),
				SyncedSeq:   wlog.SyncedSeq(),
				Segments:    wlog.Segments(),
				SnapshotSeq: snapper.LastSeq(),
			}
			if at := snapper.LastTime(); !at.IsZero() {
				st.SnapshotUnix = at.Unix()
			}
			return st
		})
	}
	var retainer *ingest.Retainer
	if *retWin > 0 {
		// srv.Pipeline (not its value now): a snapshot upload swaps the
		// serving pipeline, and retention must follow the live one.
		retainer, err = ingest.NewRetainer(srv.Pipeline, ingest.RetentionConfig{
			Window:   *retWin,
			Interval: *retIvl,
			OnError:  func(err error) { log.Printf("higgsd: retention: %v", err) },
		})
		if err != nil {
			log.Fatalf("higgsd: %v", err)
		}
		retainer.Start()
		srv.SetRetention(func() server.RetentionStatus {
			st := server.RetentionStatus{
				Enabled:         true,
				WindowSeconds:   int64(retainer.Window() / time.Second),
				IntervalSeconds: int64(retainer.Interval() / time.Second),
				Runs:            retainer.Runs(),
				Dropped:         retainer.Dropped(),
				LastCutoff:      retainer.LastCutoff(),
			}
			if at := retainer.LastTime(); !at.IsZero() {
				st.LastUnix = at.Unix()
			}
			return st
		})
	}
	var replSrv *http.Server
	if *replAddr != "" {
		// The replication feed gets its own listener: it ships raw WAL
		// bytes and whole snapshots, an operator surface never exposed
		// alongside the client API.
		replSrv = &http.Server{Addr: *replAddr, Handler: repl.NewPrimary(sum, wlog).Handler()}
		go func() {
			log.Printf("higgsd: replication feed listening on %s", *replAddr)
			if err := replSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatalf("higgsd: replication: %v", err)
			}
		}()
		srv.SetReplication(func() server.ReplicationStatus {
			return server.ReplicationStatus{Role: server.RolePrimary, PrimarySeq: wlog.SyncedSeq()}
		})
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	if *pprof != "" {
		// The API server uses its own mux, so DefaultServeMux carries only
		// the pprof handlers — served on a separate listener that is never
		// exposed alongside the public API.
		go func() {
			log.Printf("higgsd: pprof listening on %s", *pprof)
			if err := http.ListenAndServe(*pprof, nil); err != nil {
				log.Printf("higgsd: pprof: %v", err)
			}
		}()
	}

	go func() {
		log.Printf("higgsd: listening on %s (shards=%d items=%d ingest=%s wal=%v)",
			*addr, sum.NumShards(), sum.Items(), imode, *walDir != "")
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("higgsd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("higgsd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("higgsd: shutdown: %v", err)
	}
	if replSrv != nil {
		if err := replSrv.Shutdown(ctx); err != nil {
			log.Printf("higgsd: replication shutdown: %v", err)
		}
	}
	// Drain accepted-but-uncommitted ingest batches before snapshotting:
	// a 202 means the edge survives an orderly shutdown.
	if retainer != nil {
		retainer.Close() // no expires may race the drain or the final snapshot
	}
	if snapper != nil {
		snapper.Close() // stop the background loop before the final snapshot
	}
	srv.Close()
	if snapper != nil {
		// Final covering snapshot: the next boot loads it and replays an
		// empty (truncated) tail.
		if err := snapper.Snap(); err != nil {
			log.Printf("higgsd: final snapshot: %v", err)
		} else {
			log.Printf("higgsd: snapshot saved to %s", snapP)
		}
	}
	if *save != "" {
		if err := writeSnapshot(srv.Summary(), *save); err != nil {
			log.Fatalf("higgsd: save: %v", err)
		}
		log.Printf("higgsd: snapshot saved to %s", *save)
	}
	if wlog != nil {
		if err := wlog.Close(); err != nil {
			log.Printf("higgsd: wal close: %v", err)
		}
	}
}

// runFollower is the -replicate-from entrypoint: boot a replication
// follower (local cache or primary snapshot + WAL tail), serve its summary
// read-only, and keep tailing until shutdown. A resync — the primary
// truncated past our resume point — swaps the served summary atomically
// via server.ReplaceSummary.
// setupReadPath installs the optional read cache and admission controller
// (DESIGN.md §16) on a constructed server — shared between the primary and
// follower entrypoints, since a follower's read path benefits from both at
// least as much (that is where the read traffic scales out to).
func setupReadPath(srv *server.Server, cacheBytes int64, admitHeavy int, admitRate float64) error {
	if cacheBytes > 0 {
		if err := srv.SetReadCache(cacheBytes); err != nil {
			return err
		}
		log.Printf("higgsd: read cache enabled (%d bytes)", cacheBytes)
	}
	if admitHeavy > 0 || admitRate > 0 {
		ctrl, err := admit.New(admit.Config{
			HeavyConcurrency: admitHeavy,
			Rate:             admitRate,
		})
		if err != nil {
			return err
		}
		srv.SetAdmission(ctrl)
		log.Printf("higgsd: admission control enabled (heavy=%d rate=%v/s)", admitHeavy, admitRate)
	}
	return nil
}

// logAnalytics reports the effective analytics knobs, resolving the zero
// values to the engine's documented defaults.
func logAnalytics(cfg *analytics.Config) {
	topk, epoch, burst := cfg.TrackK, cfg.EpochSeconds, cfg.BurstFactor
	if topk == 0 {
		topk = analytics.DefaultTrackK
	}
	if epoch == 0 {
		epoch = analytics.DefaultEpochSeconds
	}
	if burst == 0 {
		burst = analytics.DefaultBurstFactor
	}
	log.Printf("higgsd: analytics enabled (topk=%d epoch=%ds burst=%.1f)", topk, epoch, burst)
}

func runFollower(addr, source, dir string, snapIvl time.Duration, save, pprofAddr string, cacheBytes int64, admitHeavy int, admitRate float64, anaCfg *analytics.Config) {
	// The server is built after the follower boots (it serves the booted
	// summary), but a resync can fire as soon as the tail loop starts; the
	// swap callback waits for the pointer. ReplaceSummary no-ops when the
	// server was already constructed on the swapped-in summary.
	var srvPtr atomic.Pointer[server.Server]
	f, err := repl.NewFollower(repl.FollowerConfig{
		Source:           source,
		Dir:              dir,
		SnapshotInterval: snapIvl,
		OnError:          func(err error) { log.Printf("higgsd: replication: %v", err) },
		OnSwap: func(old, new *shard.Summary) {
			for srvPtr.Load() == nil {
				time.Sleep(10 * time.Millisecond)
			}
			if err := srvPtr.Load().ReplaceSummary(new); err != nil {
				log.Printf("higgsd: resync swap: %v", err)
				return
			}
			log.Printf("higgsd: resynced from primary snapshot (items=%d)", new.Items())
		},
	})
	if err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	if err := f.Start(); err != nil {
		log.Fatalf("higgsd: follower boot: %v", err)
	}
	srv, err := server.NewReplica(f.Summary())
	if err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	if err := setupReadPath(srv, cacheBytes, admitHeavy, admitRate); err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	if anaCfg != nil {
		// A follower's summary applies tailed records through the same shard
		// entry points as ingest, so the sketches absorb everything
		// replicated after boot (the boot snapshot itself is served but not
		// re-counted — DESIGN.md §17); a resync swap rebuilds the engine
		// with the new summary automatically.
		if err := srv.SetAnalytics(*anaCfg); err != nil {
			log.Fatalf("higgsd: analytics: %v", err)
		}
		logAnalytics(anaCfg)
	}
	srvPtr.Store(srv)
	srv.SetReplication(func() server.ReplicationStatus {
		st := f.Status()
		return server.ReplicationStatus{
			Role:       server.RoleFollower,
			Source:     st.Source,
			AppliedSeq: st.AppliedSeq,
			PrimarySeq: st.PrimarySeq,
			Lag:        st.Lag,
			Resyncs:    st.Resyncs,
		}
	})
	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}

	if pprofAddr != "" {
		go func() {
			log.Printf("higgsd: pprof listening on %s", pprofAddr)
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				log.Printf("higgsd: pprof: %v", err)
			}
		}()
	}
	go func() {
		st := f.Status()
		log.Printf("higgsd: follower of %s listening on %s (shards=%d items=%d applied_seq=%d)",
			source, addr, srv.Summary().NumShards(), srv.Summary().Items(), st.AppliedSeq)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("higgsd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("higgsd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("higgsd: shutdown: %v", err)
	}
	f.Close() // stop tailing (and swapping) before touching the summary
	srv.Close()
	if save != "" {
		if err := writeSnapshot(srv.Summary(), save); err != nil {
			log.Fatalf("higgsd: save: %v", err)
		}
		log.Printf("higgsd: snapshot saved to %s", save)
	}
}

// loadOrNewSummary restores the summary at path, or builds a fresh one
// when no snapshot exists yet — the first boot of a WAL directory.
func loadOrNewSummary(path string, shards int) (*shard.Summary, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		return buildSummary("", shards)
	}
	return buildSummary(path, shards)
}

func buildSummary(load string, shards int) (*shard.Summary, error) {
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		defer f.Close()
		sum, err := shard.Read(f)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", load, err)
		}
		// The snapshot fixes the shard count; an explicit conflicting
		// -shards is a configuration error, not something to silently
		// repartition (edges cannot move between trees after the fact).
		if shards > 0 && shards != sum.NumShards() {
			return nil, fmt.Errorf("load %s: snapshot has %d shards, -shards %d requested",
				load, sum.NumShards(), shards)
		}
		return sum, nil
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	cfg := shard.DefaultConfig()
	cfg.Shards = shards
	return shard.New(cfg)
}

func writeSnapshot(sum *shard.Summary, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := sum.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
