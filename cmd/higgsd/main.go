// Command higgsd serves a HIGGS summary over HTTP — a minimal graph stream
// summarization service.
//
//	higgsd -addr :8080
//	higgsd -addr :8080 -load summary.higgs -save summary.higgs
//
// API (see internal/server):
//
//	POST /v1/insert    [{"s":1,"d":2,"w":1,"t":100}, ...]
//	POST /v1/delete    {"s":1,"d":2,"w":1,"t":100}
//	GET  /v1/edge?s=1&d=2&ts=0&te=200
//	GET  /v1/vertex?v=1&dir=out&ts=0&te=200
//	GET  /v1/path?v=1,2,3&ts=0&te=200
//	POST /v1/subgraph  {"edges":[[1,2],[2,3]],"ts":0,"te":200}
//	GET  /v1/stats
//	GET  /v1/snapshot  (binary download)   POST /v1/snapshot (restore)
//
// On SIGINT/SIGTERM the server stops accepting connections and, if -save
// is set, writes a snapshot before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"higgs/internal/core"
	"higgs/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		load = flag.String("load", "", "snapshot file to restore at startup")
		save = flag.String("save", "", "snapshot file to write on shutdown")
	)
	flag.Parse()

	sum, err := buildSummary(*load)
	if err != nil {
		log.Fatalf("higgsd: %v", err)
	}
	srv := server.New(sum)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	go func() {
		log.Printf("higgsd: listening on %s (items=%d)", *addr, sum.Items())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("higgsd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Println("higgsd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("higgsd: shutdown: %v", err)
	}
	if *save != "" {
		if err := writeSnapshot(sum, *save); err != nil {
			log.Fatalf("higgsd: save: %v", err)
		}
		log.Printf("higgsd: snapshot saved to %s", *save)
	}
}

func buildSummary(load string) (*core.Summary, error) {
	if load == "" {
		return core.New(core.DefaultConfig())
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	defer f.Close()
	sum, err := core.Read(f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", load, err)
	}
	return sum, nil
}

func writeSnapshot(sum *core.Summary, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := sum.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
