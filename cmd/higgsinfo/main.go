// Command higgsinfo reads a graph stream ("s d w t" per line, KONECT-style
// comments allowed), prints Table-II-style statistics, and optionally
// builds a HIGGS summary over it to report the resulting tree shape and
// space cost.
//
// Usage:
//
//	higgsgen -preset lkml -scale 0.2 | higgsinfo -build
//	higgsinfo -f stream.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"higgs"
	"higgs/internal/metrics"
	"higgs/internal/stream"
)

func main() {
	var (
		file  = flag.String("f", "", "stream file (default stdin)")
		build = flag.Bool("build", false, "also build a HIGGS summary and report its shape")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "higgsinfo: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	s, err := stream.Read(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsinfo: %v\n", err)
		os.Exit(1)
	}
	st := stream.Summarize(s)
	fmt.Printf("edges:          %d\n", st.Edges)
	fmt.Printf("distinct edges: %d\n", st.DistinctEdges)
	fmt.Printf("nodes:          %d\n", st.Nodes)
	fmt.Printf("time span:      %ds ([%d, %d])\n", st.Span(), st.FirstT, st.LastT)
	fmt.Printf("max out-degree: %d\n", st.MaxOutDegree)
	fmt.Printf("max in-degree:  %d\n", st.MaxInDegree)
	fmt.Printf("total weight:   %d\n", st.TotalWeight)

	if !*build {
		return
	}
	if !s.Sorted() {
		s.SortByTime()
		fmt.Println("(stream was unsorted; sorted by time before building)")
	}
	sum, err := higgs.FromStream(higgs.DefaultConfig(), s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsinfo: %v\n", err)
		os.Exit(1)
	}
	hs := sum.Stats()
	fmt.Println("\nHIGGS summary:")
	fmt.Printf("layers:           %d\n", hs.Layers)
	fmt.Printf("leaves:           %d\n", hs.Leaves)
	fmt.Printf("nodes:            %d\n", hs.Nodes)
	fmt.Printf("overflow blocks:  %d\n", hs.OverflowBlocks)
	fmt.Printf("leaf utilization: %.1f%%\n", hs.AvgLeafUtil*100)
	fmt.Printf("space (packed):   %s\n", metrics.FormatBytes(hs.SpaceBytes))
	fmt.Printf("space (heap):     %s\n", metrics.FormatBytes(hs.HeapBytes))
}
