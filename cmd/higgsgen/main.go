// Command higgsgen synthesizes graph streams in the repository's text
// format ("s d w t" per line), either from a named dataset preset or from
// explicit generator parameters.
//
// Usage:
//
//	higgsgen -preset lkml -scale 0.5 -o lkml.txt
//	higgsgen -nodes 10000 -edges 500000 -span 1000000 -skew 2.2 -variance 900 -o s.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"higgs/internal/stream"
)

func main() {
	var (
		preset   = flag.String("preset", "", "dataset preset: lkml, wiki-talk, or stackoverflow (overrides generator flags)")
		scale    = flag.Float64("scale", 1.0, "preset scale factor")
		nodes    = flag.Int("nodes", 10000, "vertex universe size")
		edges    = flag.Int("edges", 100000, "stream items")
		span     = flag.Int64("span", 1_000_000, "stream duration in seconds")
		skew     = flag.Float64("skew", 2.0, "power-law degree exponent (> 1)")
		variance = flag.Float64("variance", 900, "per-slice arrival count variance")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var (
		s   stream.Stream
		err error
	)
	if *preset != "" {
		s, err = stream.Load(stream.Preset(*preset), *scale)
	} else {
		s, err = stream.Generate(stream.Config{
			Nodes: *nodes, Edges: *edges, Span: *span,
			Skew: *skew, Variance: *variance, Seed: *seed,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "higgsgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "higgsgen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "higgsgen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := stream.Write(w, s); err != nil {
		fmt.Fprintf(os.Stderr, "higgsgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "higgsgen: wrote %d edges\n", len(s))
}
