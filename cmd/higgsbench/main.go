// Command higgsbench regenerates the paper's evaluation tables and figures
// (ICDE 2025, §VI). Each experiment builds the six competitors — HIGGS,
// PGSS, Horae, Horae-cpt, AuxoTime, AuxoTime-cpt — on synthetic stand-ins
// for the paper's datasets and prints one row per plotted point.
//
// Usage:
//
//	higgsbench -list
//	higgsbench -exp fig10
//	higgsbench -exp all -scale 1.0 -equeries 10000
//	higgsbench -exp walrecovery -json artifacts/BENCH_walrecovery.json
//
// Query volumes and dataset scale default to laptop-friendly values; raise
// -scale and the query counts to approach the paper's original volumes.
//
// -json writes a machine-readable run artifact (experiment id, options,
// elapsed time, pass/fail, and the captured table output) to the given
// path, creating parent directories — what CI uploads per run so the
// performance trajectory stays inspectable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"higgs/internal/bench"
	"higgs/internal/stream"
)

// artifact is the -json output: one self-describing record per run.
type artifact struct {
	Experiment string             `json:"experiment"`
	Presets    []string           `json:"presets"`
	Scale      float64            `json:"scale"`
	Seed       int64              `json:"seed"`
	Start      time.Time          `json:"start"`
	ElapsedMS  int64              `json:"elapsed_ms"`
	OK         bool               `json:"ok"`
	Error      string             `json:"error,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Output     string             `json:"output"`
}

// baselineMetric is one committed expectation. Rule "min" means the run's
// value must stay at or above Value·Ratio·(1−Slack−tol); rule "max" means
// at or below Value·Ratio·(1+Slack+tol). Ratio defaults to 1 — the allocs
// baseline uses it to demand a multiple of a recorded pre-refactor number
// rather than the number itself. Slack is the metric's own tolerance band
// (timing metrics on shared runners need a wide one; alloc counts none);
// -baseline-tol adds a global band on top.
type baselineMetric struct {
	Value float64 `json:"value"`
	Rule  string  `json:"rule"`
	Ratio float64 `json:"ratio,omitempty"`
	Slack float64 `json:"slack,omitempty"`
}

// baseline is a committed bench/baselines/BENCH_<exp>.json file.
type baseline struct {
	Experiment string                    `json:"experiment"`
	Scale      float64                   `json:"scale"`
	Note       string                    `json:"note,omitempty"`
	Metrics    map[string]baselineMetric `json:"metrics"`
}

// compareBaseline diffs the run's metrics against a committed baseline,
// printing one verdict line per metric and returning an error listing
// every violated bound. A baseline recorded at a different -scale is a
// hard error: the numbers would not be comparable.
func compareBaseline(path string, tol, scale float64, got map[string]float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Scale != 0 && b.Scale != scale {
		return fmt.Errorf("baseline %s recorded at -scale %g, run at %g", path, b.Scale, scale)
	}
	names := make([]string, 0, len(b.Metrics))
	for name := range b.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		m := b.Metrics[name]
		v, ok := got[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: baseline expects this metric but the run did not produce it", name))
			continue
		}
		ratio := m.Ratio
		if ratio == 0 {
			ratio = 1
		}
		switch m.Rule {
		case "min":
			floor := m.Value * ratio * (1 - m.Slack - tol)
			if v < floor {
				failures = append(failures, fmt.Sprintf("%s: %.2f below floor %.2f (baseline %.2f × ratio %.2g − slack)", name, v, floor, m.Value, ratio))
				continue
			}
			fmt.Printf("baseline %-32s ok: %.2f ≥ %.2f\n", name, v, floor)
		case "max":
			ceil := m.Value * ratio * (1 + m.Slack + tol)
			if v > ceil {
				failures = append(failures, fmt.Sprintf("%s: %.2f above ceiling %.2f (baseline %.2f)", name, v, ceil, m.Value))
				continue
			}
			fmt.Printf("baseline %-32s ok: %.2f ≤ %.2f\n", name, v, ceil)
		default:
			failures = append(failures, fmt.Sprintf("%s: unknown rule %q", name, m.Rule))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("baseline %s: %d violation(s):\n  %s", path, len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// writeArtifact persists the run record, creating parent directories.
func writeArtifact(path string, a artifact) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.5, "dataset scale factor (1.0 ≈ paper-shaped sizes)")
		equeries = flag.Int("equeries", 2000, "edge queries per range length")
		vqueries = flag.Int("vqueries", 400, "vertex queries per range length")
		pqueries = flag.Int("pqueries", 200, "path queries per hop count")
		squeries = flag.Int("squeries", 50, "subgraph queries per size")
		skewN    = flag.Int("skewnodes", 20000, "synthetic sweep: vertex universe (fig14/15)")
		skewE    = flag.Int("skewedges", 300000, "synthetic sweep: edge volume (fig14/15)")
		seed     = flag.Int64("seed", 42, "workload seed")
		presets  = flag.String("presets", "", "comma-separated dataset presets (default: all of lkml,wiki-talk,stackoverflow)")
		jsonOut  = flag.String("json", "", "write a machine-readable run artifact (JSON) to this file")
		basePath = flag.String("baseline", "", "diff the run's metrics against this committed baseline JSON and fail on violations")
		baseTol  = flag.Float64("baseline-tol", 0, "extra relative tolerance added to every baseline bound (0.1 = 10%)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "higgsbench: -exp is required (use -list to see experiments)")
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Scale:           *scale,
		EdgeQueries:     *equeries,
		VertexQueries:   *vqueries,
		PathQueries:     *pqueries,
		SubgraphQueries: *squeries,
		SkewNodes:       *skewN,
		SkewEdges:       *skewE,
		Seed:            *seed,
		Out:             os.Stdout,
	}
	if *presets != "" {
		for _, p := range strings.Split(*presets, ",") {
			opts.Presets = append(opts.Presets, stream.Preset(strings.TrimSpace(p)))
		}
	}

	var captured strings.Builder
	if *jsonOut != "" {
		opts.Out = io.MultiWriter(os.Stdout, &captured)
	}
	opts.Metrics = map[string]float64{}

	start := time.Now()
	runErr := bench.Run(*exp, opts)
	if runErr == nil && *basePath != "" {
		runErr = compareBaseline(*basePath, *baseTol, opts.Scale, opts.Metrics)
	}
	if *jsonOut != "" {
		a := artifact{
			Experiment: *exp,
			Scale:      *scale,
			Seed:       *seed,
			Start:      start.UTC(),
			ElapsedMS:  time.Since(start).Milliseconds(),
			OK:         runErr == nil,
			Metrics:    opts.Metrics,
			Output:     captured.String(),
		}
		for _, p := range opts.Presets {
			a.Presets = append(a.Presets, string(p))
		}
		if runErr != nil {
			a.Error = runErr.Error()
		}
		if err := writeArtifact(*jsonOut, a); err != nil {
			fmt.Fprintf(os.Stderr, "higgsbench: -json: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "higgsbench: %v\n", runErr)
		os.Exit(1)
	}
	fmt.Printf("\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
