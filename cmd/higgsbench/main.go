// Command higgsbench regenerates the paper's evaluation tables and figures
// (ICDE 2025, §VI). Each experiment builds the six competitors — HIGGS,
// PGSS, Horae, Horae-cpt, AuxoTime, AuxoTime-cpt — on synthetic stand-ins
// for the paper's datasets and prints one row per plotted point.
//
// Usage:
//
//	higgsbench -list
//	higgsbench -exp fig10
//	higgsbench -exp all -scale 1.0 -equeries 10000
//	higgsbench -exp walrecovery -json artifacts/BENCH_walrecovery.json
//
// Query volumes and dataset scale default to laptop-friendly values; raise
// -scale and the query counts to approach the paper's original volumes.
//
// -json writes a machine-readable run artifact (experiment id, options,
// elapsed time, pass/fail, and the captured table output) to the given
// path, creating parent directories — what CI uploads per run so the
// performance trajectory stays inspectable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"higgs/internal/bench"
	"higgs/internal/stream"
)

// artifact is the -json output: one self-describing record per run.
type artifact struct {
	Experiment string    `json:"experiment"`
	Presets    []string  `json:"presets"`
	Scale      float64   `json:"scale"`
	Seed       int64     `json:"seed"`
	Start      time.Time `json:"start"`
	ElapsedMS  int64     `json:"elapsed_ms"`
	OK         bool      `json:"ok"`
	Error      string    `json:"error,omitempty"`
	Output     string    `json:"output"`
}

// writeArtifact persists the run record, creating parent directories.
func writeArtifact(path string, a artifact) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.5, "dataset scale factor (1.0 ≈ paper-shaped sizes)")
		equeries = flag.Int("equeries", 2000, "edge queries per range length")
		vqueries = flag.Int("vqueries", 400, "vertex queries per range length")
		pqueries = flag.Int("pqueries", 200, "path queries per hop count")
		squeries = flag.Int("squeries", 50, "subgraph queries per size")
		skewN    = flag.Int("skewnodes", 20000, "synthetic sweep: vertex universe (fig14/15)")
		skewE    = flag.Int("skewedges", 300000, "synthetic sweep: edge volume (fig14/15)")
		seed     = flag.Int64("seed", 42, "workload seed")
		presets  = flag.String("presets", "", "comma-separated dataset presets (default: all of lkml,wiki-talk,stackoverflow)")
		jsonOut  = flag.String("json", "", "write a machine-readable run artifact (JSON) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "higgsbench: -exp is required (use -list to see experiments)")
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Scale:           *scale,
		EdgeQueries:     *equeries,
		VertexQueries:   *vqueries,
		PathQueries:     *pqueries,
		SubgraphQueries: *squeries,
		SkewNodes:       *skewN,
		SkewEdges:       *skewE,
		Seed:            *seed,
		Out:             os.Stdout,
	}
	if *presets != "" {
		for _, p := range strings.Split(*presets, ",") {
			opts.Presets = append(opts.Presets, stream.Preset(strings.TrimSpace(p)))
		}
	}

	var captured strings.Builder
	if *jsonOut != "" {
		opts.Out = io.MultiWriter(os.Stdout, &captured)
	}

	start := time.Now()
	runErr := bench.Run(*exp, opts)
	if *jsonOut != "" {
		a := artifact{
			Experiment: *exp,
			Scale:      *scale,
			Seed:       *seed,
			Start:      start.UTC(),
			ElapsedMS:  time.Since(start).Milliseconds(),
			OK:         runErr == nil,
			Output:     captured.String(),
		}
		for _, p := range opts.Presets {
			a.Presets = append(a.Presets, string(p))
		}
		if runErr != nil {
			a.Error = runErr.Error()
		}
		if err := writeArtifact(*jsonOut, a); err != nil {
			fmt.Fprintf(os.Stderr, "higgsbench: -json: %v\n", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "higgsbench: %v\n", runErr)
		os.Exit(1)
	}
	fmt.Printf("\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
