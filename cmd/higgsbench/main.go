// Command higgsbench regenerates the paper's evaluation tables and figures
// (ICDE 2025, §VI). Each experiment builds the six competitors — HIGGS,
// PGSS, Horae, Horae-cpt, AuxoTime, AuxoTime-cpt — on synthetic stand-ins
// for the paper's datasets and prints one row per plotted point.
//
// Usage:
//
//	higgsbench -list
//	higgsbench -exp fig10
//	higgsbench -exp all -scale 1.0 -equeries 10000
//
// Query volumes and dataset scale default to laptop-friendly values; raise
// -scale and the query counts to approach the paper's original volumes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"higgs/internal/bench"
	"higgs/internal/stream"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.5, "dataset scale factor (1.0 ≈ paper-shaped sizes)")
		equeries = flag.Int("equeries", 2000, "edge queries per range length")
		vqueries = flag.Int("vqueries", 400, "vertex queries per range length")
		pqueries = flag.Int("pqueries", 200, "path queries per hop count")
		squeries = flag.Int("squeries", 50, "subgraph queries per size")
		skewN    = flag.Int("skewnodes", 20000, "synthetic sweep: vertex universe (fig14/15)")
		skewE    = flag.Int("skewedges", 300000, "synthetic sweep: edge volume (fig14/15)")
		seed     = flag.Int64("seed", 42, "workload seed")
		presets  = flag.String("presets", "", "comma-separated dataset presets (default: all of lkml,wiki-talk,stackoverflow)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "higgsbench: -exp is required (use -list to see experiments)")
		flag.Usage()
		os.Exit(2)
	}

	opts := bench.Options{
		Scale:           *scale,
		EdgeQueries:     *equeries,
		VertexQueries:   *vqueries,
		PathQueries:     *pqueries,
		SubgraphQueries: *squeries,
		SkewNodes:       *skewN,
		SkewEdges:       *skewE,
		Seed:            *seed,
		Out:             os.Stdout,
	}
	if *presets != "" {
		for _, p := range strings.Split(*presets, ",") {
			opts.Presets = append(opts.Presets, stream.Preset(strings.TrimSpace(p)))
		}
	}

	start := time.Now()
	if err := bench.Run(*exp, opts); err != nil {
		fmt.Fprintf(os.Stderr, "higgsbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n(completed in %v)\n", time.Since(start).Round(time.Millisecond))
}
