// Trafficpeaks: rush-hour analysis on a road-network flow stream — the
// paper's urban-traffic application ("analyzing and optimizing traffic flow
// based on historical data during peak hours", §I).
//
// Road intersections are vertices and each passing vehicle contributes one
// weighted edge (segment traversal). We summarize two weeks of traffic,
// then compare morning-peak, evening-peak, and off-peak flow through a
// junction using temporal vertex queries, and find the busiest corridor
// with path queries — all against the compact HIGGS summary.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"higgs"
)

const (
	hour = int64(3600)
	day  = 24 * hour
	days = 14
)

// junction of interest and three candidate commuter corridors through it.
var (
	junction  = uint64(100)
	corridors = [][]uint64{
		{10, 50, 100, 150, 200}, // western corridor
		{20, 60, 100, 160, 220}, // central corridor
		{30, 70, 100, 170, 230}, // eastern corridor
	}
)

func main() {
	rng := rand.New(rand.NewSource(5))

	var stream higgs.Stream
	addTrip := func(path []uint64, t int64) {
		for i := 0; i+1 < len(path); i++ {
			stream = append(stream, higgs.Edge{S: path[i], D: path[i+1], W: 1, T: t})
		}
	}
	// Two weeks of synthetic traffic: heavy central-corridor commuting at
	// 7–9am, lighter evening peak at 5–7pm, sparse background otherwise.
	for d := int64(0); d < days; d++ {
		base := d * day
		for i := 0; i < 2000; i++ { // morning commute, mostly central
			c := corridors[1]
			if rng.Intn(4) == 0 {
				c = corridors[rng.Intn(3)]
			}
			addTrip(c, base+7*hour+rng.Int63n(2*hour))
		}
		for i := 0; i < 1200; i++ { // evening commute, spread out
			addTrip(corridors[rng.Intn(3)], base+17*hour+rng.Int63n(2*hour))
		}
		for i := 0; i < 800; i++ { // background traffic
			addTrip(corridors[rng.Intn(3)][1:4], base+rng.Int63n(day))
		}
	}
	stream.SortByTime()

	s, err := higgs.FromStream(higgs.DefaultConfig(), stream)
	if err != nil {
		log.Fatal(err)
	}

	// Flow through the junction by daypart, averaged over the two weeks.
	fmt.Println("junction flow by daypart (vehicles entering junction 100):")
	dayparts := []struct {
		name   string
		lo, hi int64
	}{
		{"morning peak (7-9am)", 7 * hour, 9 * hour},
		{"midday (11am-1pm)", 11 * hour, 13 * hour},
		{"evening peak (5-7pm)", 17 * hour, 19 * hour},
		{"night (11pm-1am)", 23 * hour, 25 * hour},
	}
	for _, dp := range dayparts {
		var total int64
		for d := int64(0); d < days; d++ {
			total += s.VertexIn(junction, d*day+dp.lo, d*day+dp.hi-1)
		}
		fmt.Printf("  %-22s %6d vehicles (%.0f/day)\n", dp.name, total, float64(total)/days)
	}

	// Which corridor dominates the morning peak? Path queries answer it.
	fmt.Println("\nmorning-peak corridor volumes (path queries, day 3, 7-9am):")
	ts, te := 3*day+7*hour, 3*day+9*hour-1
	best, bestVol := -1, int64(-1)
	for i, c := range corridors {
		v := s.PathWeight(c, ts, te)
		fmt.Printf("  corridor %d: %d segment traversals\n", i, v)
		if v > bestVol {
			best, bestVol = i, v
		}
	}
	fmt.Printf("busiest corridor: %d (ground truth: 1, the central corridor)\n", best)

	st := s.Stats()
	fmt.Printf("\nstream: %d segment events summarized in %d KB (%d layers)\n",
		st.Items, st.SpaceBytes/1024, st.Layers)
}
