// Quickstart: build a HIGGS summary over a small synthetic graph stream
// and run every temporal-range-query primitive the paper defines (§III):
// edge, vertex, path, and subgraph queries.
package main

import (
	"fmt"
	"log"

	"higgs"
)

func main() {
	// A tiny social graph: users message each other over one day.
	// (This is the stream of the paper's Fig. 5, Example 1.)
	edges := higgs.Stream{
		{S: 2, D: 3, W: 1, T: 1},
		{S: 4, D: 5, W: 1, T: 2},
		{S: 1, D: 2, W: 2, T: 3},
		{S: 2, D: 4, W: 1, T: 4},
		{S: 4, D: 6, W: 3, T: 5},
		{S: 2, D: 3, W: 1, T: 6},
		{S: 3, D: 7, W: 2, T: 7},
		{S: 4, D: 7, W: 2, T: 8},
		{S: 2, D: 3, W: 2, T: 9},
		{S: 6, D: 7, W: 1, T: 10},
		{S: 5, D: 6, W: 1, T: 11},
	}

	s, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges {
		s.Insert(e)
	}

	// Edge query: aggregated weight of v2 → v3 between t5 and t10.
	// The paper's Example 1 works this out to 3 (arrivals at t6 and t9).
	fmt.Printf("edge   v2→v3 in [5,10]      = %d (paper: 3)\n", s.EdgeWeight(2, 3, 5, 10))

	// Vertex query: total outgoing weight of v4 between t1 and t11 = 6.
	fmt.Printf("vertex out(v4) in [1,11]    = %d (paper: 6)\n", s.VertexOut(4, 1, 11))

	// Incoming side works too.
	fmt.Printf("vertex in(v7) in [1,11]     = %d\n", s.VertexIn(7, 1, 11))

	// Path query: sum of edge weights along v1 → v2 → v3 over the day.
	fmt.Printf("path   v1→v2→v3 in [1,11]   = %d\n", s.PathWeight([]uint64{1, 2, 3}, 1, 11))

	// Subgraph query over {(v2,v3), (v3,v7), (v2,v4)} in [5,8] = 3.
	sub := [][2]uint64{{2, 3}, {3, 7}, {2, 4}}
	fmt.Printf("subgraph {…} in [5,8]       = %d (paper: 3)\n", s.SubgraphWeight(sub, 5, 8))

	// Deletion is supported: remove the t6 arrival of v2→v3 and re-ask.
	s.Delete(higgs.Edge{S: 2, D: 3, W: 1, T: 6})
	fmt.Printf("edge   v2→v3 after delete   = %d\n", s.EdgeWeight(2, 3, 5, 10))

	// Structure introspection.
	st := s.Stats()
	fmt.Printf("\nsummary: %d items, %d layer(s), %d leaf/leaves, %d bytes packed\n",
		st.Items, st.Layers, st.Leaves, st.SpaceBytes)
}
