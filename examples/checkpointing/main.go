// Checkpointing: operate HIGGS as a long-running ingester that survives
// restarts. The summary is periodically snapshotted with WriteTo; after a
// simulated crash the process restores it with higgs.Load and resumes the
// stream exactly where it left off — queries are bit-for-bit identical to
// a process that never restarted.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"higgs"
)

func main() {
	stream, err := higgs.GenerateStream(higgs.StreamConfig{
		Nodes: 2000, Edges: 100_000, Span: 1_000_000, Skew: 2.0, Variance: 900, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	half := len(stream) / 2

	// Reference: one process that sees the whole stream.
	reference, err := higgs.FromStream(higgs.DefaultConfig(), stream)
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: ingest the first half, then checkpoint to disk.
	ingester, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range stream[:half] {
		ingester.Insert(e)
	}
	dir, err := os.MkdirTemp("", "higgs-checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "summary.higgs")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	n, err := ingester.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint after %d edges: %d bytes (%d leaves, %d layers)\n",
		half, n, ingester.Stats().Leaves, ingester.Stats().Layers)

	// Simulated crash: the ingester is gone. Phase 2: restore and resume.
	f2, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := higgs.Load(f2)
	if err != nil {
		log.Fatal(err)
	}
	f2.Close()
	fmt.Printf("restored from disk: %d items\n", restored.Items())
	for _, e := range stream[half:] {
		restored.Insert(e)
	}
	restored.Finalize()

	// Verify: restored-and-resumed answers match the never-restarted run.
	first, last := stream[0].T, stream[len(stream)-1].T
	mismatches := 0
	for v := uint64(0); v < 2000; v += 13 {
		if restored.VertexOut(v, first, last) != reference.VertexOut(v, first, last) {
			mismatches++
		}
	}
	fmt.Printf("checked %d vertex queries against the uninterrupted run: %d mismatches\n",
		2000/13+1, mismatches)
	if mismatches == 0 {
		fmt.Println("restart was lossless: summaries are equivalent")
	}
}
