// Socialburst: trend detection on a social message stream — the paper's
// first motivating application ("detect trending topics and the evolution
// of discussions over defined temporal intervals", §I).
//
// We synthesize a month of user-to-user mentions in which one influencer
// receives a burst of attention during a three-day window, summarize the
// stream with HIGGS, and locate the burst by sliding a one-day vertex
// query across the month — without ever storing the raw stream.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"higgs"
)

const (
	day       = int64(86_400)
	month     = 30 * day
	users     = 5_000
	influName = uint64(4242) // the influencer
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Background chatter: ~200k mentions uniformly over the month.
	var stream higgs.Stream
	for i := 0; i < 200_000; i++ {
		stream = append(stream, higgs.Edge{
			S: uint64(rng.Intn(users)),
			D: uint64(rng.Intn(users)),
			W: 1,
			T: rng.Int63n(month),
		})
	}
	// The burst: days 12–14, 15k extra mentions of the influencer.
	burstStart := 12 * day
	for i := 0; i < 15_000; i++ {
		stream = append(stream, higgs.Edge{
			S: uint64(rng.Intn(users)),
			D: influName,
			W: 1,
			T: burstStart + rng.Int63n(3*day),
		})
	}
	stream.SortByTime()

	s, err := higgs.FromStream(higgs.DefaultConfig(), stream)
	if err != nil {
		log.Fatal(err)
	}

	// Slide a one-day window over the month and measure the influencer's
	// incoming mention volume per day.
	fmt.Println("day  mentions(in)  bar")
	var peakDay int64
	var peakCount int64
	for d := int64(0); d < 30; d++ {
		c := s.VertexIn(influName, d*day, (d+1)*day-1)
		bar := ""
		for i := int64(0); i < c/250; i++ {
			bar += "#"
		}
		fmt.Printf("%3d  %12d  %s\n", d, c, bar)
		if c > peakCount {
			peakCount, peakDay = c, d
		}
	}
	fmt.Printf("\ntrending window detected at day %d (%d mentions/day)\n", peakDay, peakCount)
	fmt.Printf("ground-truth burst was days 12-14\n")

	st := s.Stats()
	fmt.Printf("\nstream: %d items summarized in %d KB (%d leaves, %d layers)\n",
		st.Items, st.SpaceBytes/1024, st.Leaves, st.Layers)
}
