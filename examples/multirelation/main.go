// Multirelation: heterogeneous graph streams — the paper's first
// future-work direction (§VII). A platform emits one stream with three
// relation types (follows, pays, messages); the labeled HIGGS extension
// answers per-relation temporal queries that a label-blind summary cannot:
// "how much money flowed a→b this week?" vs "how often did a message b?".
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"higgs/internal/core"
	"higgs/internal/hetero"
)

const (
	relFollows = uint32(1)
	relPays    = uint32(2)
	relMessage = uint32(3)

	day  = int64(86_400)
	week = 7 * day
)

func main() {
	rng := rand.New(rand.NewSource(21))
	s, err := hetero.New(core.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// One week of mixed activity between 5000 users. User 42 runs a shop:
	// many small incoming payments; user 7 is an influencer: many follows.
	edges := make([]hetero.Edge, 0, 200_000)
	for i := 0; i < 150_000; i++ {
		rel := []uint32{relFollows, relPays, relMessage}[rng.Intn(3)]
		w := int64(1)
		if rel == relPays {
			w = int64(rng.Intn(200) + 1)
		}
		edges = append(edges, hetero.Edge{
			S: uint64(rng.Intn(5000)), D: uint64(rng.Intn(5000)),
			Label: rel, W: w, T: rng.Int63n(week),
		})
	}
	for i := 0; i < 20_000; i++ { // the shop's customers pay in
		edges = append(edges, hetero.Edge{
			S: uint64(rng.Intn(5000)), D: 42, Label: relPays,
			W: int64(rng.Intn(50) + 5), T: rng.Int63n(week),
		})
	}
	for i := 0; i < 30_000; i++ { // the influencer gains followers
		edges = append(edges, hetero.Edge{
			S: uint64(rng.Intn(5000)), D: 7, Label: relFollows,
			W: 1, T: rng.Int63n(week),
		})
	}
	sortByTime(edges)
	for _, e := range edges {
		s.Insert(e)
	}
	s.Finalize()

	fmt.Println("per-relation incoming volume over the week:")
	fmt.Printf("%-12s %12s %12s %12s %14s\n", "user", "follows(in)", "pays(in)", "msgs(in)", "all-relations")
	for _, u := range []uint64{42, 7, 1234} {
		fmt.Printf("%-12d %12d %12d %12d %14d\n", u,
			s.VertexInLabeled(u, relFollows, 0, week),
			s.VertexInLabeled(u, relPays, 0, week),
			s.VertexInLabeled(u, relMessage, 0, week),
			s.VertexIn(u, 0, week))
	}

	// Daily revenue trend for the shop: a labeled vertex query per day.
	fmt.Println("\nshop (user 42) daily payment intake:")
	for d := int64(0); d < 7; d++ {
		rev := s.VertexInLabeled(42, relPays, d*day, (d+1)*day-1)
		fmt.Printf("  day %d: $%d\n", d, rev)
	}

	// A money-trail path query restricted to the pays relation.
	trail := s.PathWeightLabeled([]uint64{100, 200, 300}, relPays, 0, week)
	fmt.Printf("\npays-only trail 100→200→300 this week: $%d\n", trail)

	st := s.Stats()
	fmt.Printf("\n%d labeled items summarized in %d KB (both views)\n",
		st.Items, s.SpaceBytes()/1024)
}

func sortByTime(edges []hetero.Edge) {
	sort.Slice(edges, func(i, j int) bool { return edges[i].T < edges[j].T })
}
