// Fraudrings: transaction-ring screening on a payment stream — the paper's
// financial application ("quickly identify fraudulent transaction patterns
// within certain time frames", §I).
//
// A fraud ring moves money in a cycle a→b→c→d→a in short time windows so
// each account's balance looks flat on daily statements. We summarize one
// week of payments with HIGGS and screen candidate rings with subgraph
// queries per 6-hour window: a ring "fires" in a window when every edge of
// the cycle carries weight there. HIGGS answers from sublinear space and
// never under-estimates, so the screen cannot produce false negatives.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"higgs"
)

const (
	hour     = int64(3600)
	week     = 7 * 24 * hour
	accounts = 20_000
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Legitimate traffic: 300k transfers over the week.
	var stream higgs.Stream
	for i := 0; i < 300_000; i++ {
		stream = append(stream, higgs.Edge{
			S: uint64(rng.Intn(accounts)),
			D: uint64(rng.Intn(accounts)),
			W: int64(rng.Intn(900) + 100), // $100–$999
			T: rng.Int63n(week),
		})
	}
	// The ring: four accounts cycling funds during two separate windows.
	ring := []uint64{666, 1337, 4242, 9999}
	ringWindows := []int64{30 * hour, 120 * hour}
	for _, w0 := range ringWindows {
		for hop := 0; hop < 4; hop++ {
			for burst := 0; burst < 8; burst++ {
				stream = append(stream, higgs.Edge{
					S: ring[hop],
					D: ring[(hop+1)%4],
					W: 5_000,
					T: w0 + rng.Int63n(2*hour),
				})
			}
		}
	}
	stream.SortByTime()

	s, err := higgs.FromStream(higgs.DefaultConfig(), stream)
	if err != nil {
		log.Fatal(err)
	}

	// The ring's edge set as a subgraph query.
	ringEdges := [][2]uint64{}
	for hop := 0; hop < 4; hop++ {
		ringEdges = append(ringEdges, [2]uint64{ring[hop], ring[(hop+1)%4]})
	}
	// A benign control subgraph of random account pairs.
	control := [][2]uint64{{17, 23}, {99, 3}, {500, 200}, {7, 8}}

	fmt.Println("screening 6-hour windows (ring fires when ALL cycle edges carry weight):")
	fmt.Println("window  ring-volume  every-edge-active  control-volume")
	for w := int64(0); w < week; w += 6 * hour {
		ts, te := w, w+6*hour-1
		vol := s.SubgraphWeight(ringEdges, ts, te)
		allActive := true
		for _, e := range ringEdges {
			if s.EdgeWeight(e[0], e[1], ts, te) == 0 {
				allActive = false
				break
			}
		}
		flag := ""
		if allActive && vol > 50_000 {
			flag = "  <-- RING ALERT"
		}
		if vol > 0 || allActive {
			fmt.Printf("h%03d    $%-10d  %-17v  $%d%s\n",
				w/hour, vol, allActive, s.SubgraphWeight(control, ts, te), flag)
		}
	}
	fmt.Printf("\nground truth: ring activity planted at h030 and h120\n")
	st := s.Stats()
	fmt.Printf("stream: %d transfers summarized in %d KB\n", st.Items, st.SpaceBytes/1024)
}
