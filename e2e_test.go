package higgs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"higgs"
)

// buildTools compiles the repository's command binaries once per test run.
func buildTools(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

// TestE2EGenInfoPipeline exercises higgsgen | higgsinfo -build.
func TestE2EGenInfoPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsgen", "higgsinfo")

	gen := exec.Command(bins["higgsgen"], "-nodes", "500", "-edges", "20000",
		"-span", "100000", "-skew", "2.0", "-seed", "5")
	var streamOut bytes.Buffer
	gen.Stdout = &streamOut
	if err := gen.Run(); err != nil {
		t.Fatalf("higgsgen: %v", err)
	}
	if n := bytes.Count(streamOut.Bytes(), []byte("\n")); n != 20000 {
		t.Fatalf("higgsgen emitted %d lines, want 20000", n)
	}

	info := exec.Command(bins["higgsinfo"], "-build")
	info.Stdin = bytes.NewReader(streamOut.Bytes())
	out, err := info.CombinedOutput()
	if err != nil {
		t.Fatalf("higgsinfo: %v\n%s", err, out)
	}
	for _, want := range []string{"edges:          20000", "HIGGS summary:", "layers:", "space (packed):"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("higgsinfo output missing %q:\n%s", want, out)
		}
	}
}

// TestE2EBenchList checks higgsbench -list and a tiny experiment run.
func TestE2EBenchList(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsbench")
	out, err := exec.Command(bins["higgsbench"], "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("higgsbench -list: %v\n%s", err, out)
	}
	for _, id := range []string{"table2", "fig10", "fig21", "ablation"} {
		if !strings.Contains(string(out), id) {
			t.Fatalf("-list missing %s:\n%s", id, out)
		}
	}
	out, err = exec.Command(bins["higgsbench"], "-exp", "table2", "-scale", "0.02",
		"-presets", "lkml").CombinedOutput()
	if err != nil {
		t.Fatalf("higgsbench table2: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "lkml") {
		t.Fatalf("table2 output:\n%s", out)
	}
	// Unknown experiment fails loudly.
	if _, err := exec.Command(bins["higgsbench"], "-exp", "nope").CombinedOutput(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestE2EDaemon boots higgsd, drives the HTTP API, saves a snapshot on
// shutdown, and restarts from it.
func TestE2EDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	snap := filepath.Join(t.TempDir(), "state.higgs")
	addr := freeAddr(t)

	run := exec.Command(bins["higgsd"], "-addr", addr, "-save", snap)
	var logs bytes.Buffer
	run.Stderr = &logs
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Process.Kill()
	waitHTTP(t, addr)

	base := "http://" + addr
	resp, err := http.Post(base+"/v1/insert", "application/json",
		strings.NewReader(`[{"s":1,"d":2,"w":3,"t":10},{"s":1,"d":2,"w":4,"t":20}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getWeight(t, base+"/v1/edge?s=1&d=2&ts=0&te=100"); got != 7 {
		t.Fatalf("edge weight = %d, want 7", got)
	}

	// Graceful shutdown writes the snapshot.
	if err := run.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("higgsd exit: %v\n%s", err, logs.String())
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v\n%s", err, logs.String())
	}

	// Restart from the snapshot and verify state survived.
	addr2 := freeAddr(t)
	run2 := exec.Command(bins["higgsd"], "-addr", addr2, "-load", snap)
	run2.Stderr = io.Discard
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		run2.Process.Signal(os.Interrupt)
		run2.Wait()
	}()
	waitHTTP(t, addr2)
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=1&d=2&ts=0&te=100"); got != 7 {
		t.Fatalf("restored edge weight = %d, want 7", got)
	}
}

// TestE2ECrashRecoveryExpireWALDir is the durable-retention e2e gate:
// ingest, expire over HTTP, ingest more, SIGKILL, restart on the same
// -wal-dir — and the recovered summary must be byte-for-byte what a clean
// in-process run of the same operations produces. Before expiry was a
// WAL-logged operation, recovery replayed the raw edge log and resurrected
// every expired edge, so this test is red on a build without expire
// records.
func TestE2ECrashRecoveryExpireWALDir(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	walDir := filepath.Join(t.TempDir(), "wal")
	addr := freeAddr(t)

	run := exec.Command(bins["higgsd"], "-addr", addr, "-shards", "2",
		"-ingest-mode", "async", "-commit-interval", "1h", "-wal-dir", walDir)
	var logs bytes.Buffer
	run.Stderr = &logs
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Process.Kill()
	waitHTTP(t, addr)
	base := "http://" + addr

	// Two deterministic batches around a cutoff that drops whole subtrees.
	mkBatch := func(from, to int) ([]higgs.Edge, string) {
		var edges []higgs.Edge
		var sb strings.Builder
		sb.WriteByte('[')
		for i := from; i < to; i++ {
			if i > from {
				sb.WriteByte(',')
			}
			e := higgs.Edge{S: uint64(i % 50), D: uint64(i%50 + 1), W: 1, T: int64(i)}
			edges = append(edges, e)
			fmt.Fprintf(&sb, `{"s":%d,"d":%d,"w":%d,"t":%d}`, e.S, e.D, e.W, e.T)
		}
		sb.WriteByte(']')
		return edges, sb.String()
	}
	batch1, body1 := mkBatch(0, 3000)
	batch2, body2 := mkBatch(3000, 3600)
	const cutoff = 1500

	ingest := func(body string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status = %d, want 202 or 200", resp.StatusCode)
		}
	}
	ingest(body1)
	resp, err := http.Post(base+"/v1/expire", "application/json",
		strings.NewReader(fmt.Sprintf(`{"cutoff":%d}`, cutoff)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("expire status = %d: %s", resp.StatusCode, b)
	}
	var exp map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if exp["dropped"] <= 0 {
		t.Fatalf("expire dropped %d leaves, want > 0 (the test would be vacuous)", exp["dropped"])
	}
	ingest(body2)

	// Hard crash: SIGKILL — queues, summary, everything in memory is gone.
	if err := run.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	run.Wait()

	// Clean in-process reference: identical batches and expire, in order,
	// through a sync WAL'd pipeline (so sequence numbers and watermarks
	// match the daemon's).
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2
	ref, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	refLog, err := higgs.OpenWAL(higgs.WALConfig{Dir: filepath.Join(t.TempDir(), "refwal")})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := higgs.NewIngest(ref, higgs.IngestConfig{Mode: higgs.IngestSync, WAL: refLog})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Submit(batch1); err != nil {
		t.Fatal(err)
	}
	if dropped, err := pipe.Expire(cutoff); err != nil || dropped <= 0 {
		t.Fatalf("reference expire: dropped = %d, err = %v", dropped, err)
	}
	if _, err := pipe.Submit(batch2); err != nil {
		t.Fatal(err)
	}
	pipe.Close()
	if err := refLog.Close(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}

	// Restart on the same WAL dir: recovery must reproduce the post-expire
	// state exactly — not resurrect the expired edges.
	addr2 := freeAddr(t)
	run2 := exec.Command(bins["higgsd"], "-addr", addr2, "-shards", "2", "-wal-dir", walDir)
	var logs2 bytes.Buffer
	run2.Stderr = &logs2
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		run2.Process.Signal(os.Interrupt)
		run2.Wait()
	}()
	waitHTTP(t, addr2)
	sresp, err := http.Get("http://" + addr2 + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("recovered snapshot (%d bytes) diverges from clean post-expire reference (%d bytes): expired edges were resurrected or tail edges lost\n%s",
			len(got), want.Len(), logs2.String())
	}
	// The post-crash tail survived too.
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=1&d=2&ts=3000&te=3600"); got <= 0 {
		t.Fatalf("post-expire tail edge lost: weight = %d, want > 0", got)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHTTP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/v1/stats")
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", addr)
}

func getWeight(t *testing.T, url string) int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, b)
	}
	var v map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v["weight"]
}

// TestE2EAsyncDaemon boots higgsd in async ingest mode with a deliberately
// huge commit interval, 202-ingests edges, checks the flush barrier makes
// them visible, then SIGTERMs with *unflushed* edges pending: the shutdown
// drain must fold them into the -save snapshot, and a restart must serve
// them.
func TestE2EAsyncDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	snap := filepath.Join(t.TempDir(), "state.higgs")
	addr := freeAddr(t)

	run := exec.Command(bins["higgsd"], "-addr", addr, "-save", snap,
		"-shards", "2", "-ingest-mode", "async", "-commit-interval", "1h")
	var logs bytes.Buffer
	run.Stderr = &logs
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Process.Kill()
	waitHTTP(t, addr)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/ingest", "application/json",
		strings.NewReader(`[{"s":1,"d":2,"w":3,"t":10},{"s":1,"d":2,"w":4,"t":20}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
	}
	resp, err = http.Post(base+"/v1/flush", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getWeight(t, base+"/v1/edge?s=1&d=2&ts=0&te=100"); got != 7 {
		t.Fatalf("edge weight after flush = %d, want 7", got)
	}

	// Accepted but never flushed: only the shutdown drain can save it.
	resp, err = http.Post(base+"/v1/ingest", "application/json",
		strings.NewReader(`[{"s":2,"d":3,"w":5,"t":30}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second ingest status = %d, want 202", resp.StatusCode)
	}
	if err := run.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("higgsd exit: %v\n%s", err, logs.String())
	}

	addr2 := freeAddr(t)
	run2 := exec.Command(bins["higgsd"], "-addr", addr2, "-load", snap)
	run2.Stderr = io.Discard
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		run2.Process.Signal(os.Interrupt)
		run2.Wait()
	}()
	waitHTTP(t, addr2)
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=2&d=3&ts=0&te=100"); got != 5 {
		t.Fatalf("unflushed 202 edge lost across shutdown: weight = %d, want 5", got)
	}
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=1&d=2&ts=0&te=100"); got != 7 {
		t.Fatalf("restored edge weight = %d, want 7", got)
	}
}

// TestE2ESigtermDrainSnapshotExact covers the SIGTERM shutdown contract:
// a draining Close() plus -save must leave a snapshot that LoadSharded
// restores exactly. The daemon 202-accepts edges in async mode with a
// commit interval so large only the shutdown drain can apply them, gets
// SIGTERM, and the snapshot it writes must be byte-for-byte what an
// in-process summary fed the same batch produces — and must restore to
// the same answers.
func TestE2ESigtermDrainSnapshotExact(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	snap := filepath.Join(t.TempDir(), "state.higgs")
	addr := freeAddr(t)

	run := exec.Command(bins["higgsd"], "-addr", addr, "-save", snap,
		"-shards", "2", "-ingest-mode", "async", "-commit-interval", "1h")
	var logs bytes.Buffer
	run.Stderr = &logs
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Process.Kill()
	waitHTTP(t, addr)

	body := `[{"s":1,"d":2,"w":3,"t":10},{"s":2,"d":3,"w":5,"t":20},{"s":1,"d":2,"w":4,"t":30}]`
	resp, err := http.Post("http://"+addr+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
	}
	if err := run.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := run.Wait(); err != nil {
		t.Fatalf("higgsd exit: %v\n%s", err, logs.String())
	}

	// In-process reference: same configuration, same edges, same order.
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2
	ref, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	ref.InsertBatch([]higgs.Edge{
		{S: 1, D: 2, W: 3, T: 10}, {S: 2, D: 3, W: 5, T: 20}, {S: 1, D: 2, W: 4, T: 30},
	})
	var want bytes.Buffer
	if _, err := ref.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(snap)
	if err != nil {
		t.Fatalf("snapshot not written: %v\n%s", err, logs.String())
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("drained -save snapshot (%d bytes) differs from in-process reference (%d bytes)",
			len(got), want.Len())
	}
	loaded, err := higgs.LoadSharded(bytes.NewReader(got))
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	if w := loaded.EdgeWeight(1, 2, 0, 100); w != 7 {
		t.Fatalf("restored edge 1→2 weight = %d, want 7", w)
	}
	if w := loaded.EdgeWeight(2, 3, 0, 100); w != 5 {
		t.Fatalf("restored edge 2→3 weight = %d, want 5", w)
	}
}

// TestE2ECrashRecoveryWALDir kills higgsd with SIGKILL — no drain, no
// snapshot — and restarts it on the same -wal-dir: every 202-accepted
// edge must come back via snapshot + WAL replay (DESIGN.md §12).
func TestE2ECrashRecoveryWALDir(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	walDir := filepath.Join(t.TempDir(), "wal")
	addr := freeAddr(t)

	run := exec.Command(bins["higgsd"], "-addr", addr, "-shards", "2",
		"-ingest-mode", "async", "-commit-interval", "1h", "-wal-dir", walDir)
	var logs bytes.Buffer
	run.Stderr = &logs
	if err := run.Start(); err != nil {
		t.Fatal(err)
	}
	defer run.Process.Kill()
	waitHTTP(t, addr)
	base := "http://" + addr

	resp, err := http.Post(base+"/v1/ingest", "application/json",
		strings.NewReader(`[{"s":1,"d":2,"w":3,"t":10},{"s":2,"d":3,"w":5,"t":20}]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d, want 202", resp.StatusCode)
	}
	// healthz advertises the WAL with the accepted edges already synced
	// (202 is only sent after the group fsync).
	hz := struct {
		Durability struct {
			WAL       bool   `json:"wal"`
			Appended  uint64 `json:"appended_seq"`
			SyncedSeq uint64 `json:"synced_seq"`
		} `json:"durability"`
	}{}
	hresp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if !hz.Durability.WAL || hz.Durability.Appended != 2 || hz.Durability.SyncedSeq != 2 {
		t.Fatalf("healthz durability = %+v, want wal=true appended=2 synced=2", hz.Durability)
	}
	// A snapshot upload must be refused: the WAL owns the durable state.
	resp, err = http.Post(base+"/v1/snapshot", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("snapshot upload with -wal-dir: status %d, want 409", resp.StatusCode)
	}

	// Hard crash: SIGKILL. The commit interval is an hour, so the edges
	// sit in queues — only the WAL has them.
	if err := run.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	run.Wait()

	addr2 := freeAddr(t)
	run2 := exec.Command(bins["higgsd"], "-addr", addr2, "-shards", "2", "-wal-dir", walDir)
	var logs2 bytes.Buffer
	run2.Stderr = &logs2
	if err := run2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		run2.Process.Signal(os.Interrupt)
		run2.Wait()
	}()
	waitHTTP(t, addr2)
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=1&d=2&ts=0&te=100"); got != 3 {
		t.Fatalf("crashed 202 edge lost: weight = %d, want 3\n%s", got, logs2.String())
	}
	if got := getWeight(t, "http://"+addr2+"/v1/edge?s=2&d=3&ts=0&te=100"); got != 5 {
		t.Fatalf("crashed 202 edge lost: weight = %d, want 5\n%s", got, logs2.String())
	}
}
