package higgs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// replHealth is the slice of /healthz this test consumes.
type replHealth struct {
	Durability struct {
		Appended  uint64 `json:"appended_seq"`
		SyncedSeq uint64 `json:"synced_seq"`
	} `json:"durability"`
	Replication struct {
		Role       string `json:"role"`
		Source     string `json:"source"`
		AppliedSeq uint64 `json:"applied_seq"`
		Lag        uint64 `json:"lag"`
		Resyncs    int64  `json:"resyncs"`
	} `json:"replication"`
}

func getHealth(t *testing.T, base string) replHealth {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h replHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func getSnapshot(t *testing.T, base string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d, err %v", resp.StatusCode, err)
	}
	return b
}

// TestE2EReplicationChaos is the kill -9 gate for WAL-shipping
// replication: a follower is SIGKILLed mid-catch-up and again mid-tail
// (while the primary keeps ingesting, including an expire), restarted on
// its -replica-dir each time, and must converge to a summary
// byte-identical to the primary's — replaying its overlap with what the
// dead incarnation already applied without double-applying a single
// record (a double-apply changes weights and breaks byte equality). The
// replica must serve reads and answer 403 on every write.
func TestE2EReplicationChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds binaries")
	}
	bins := buildTools(t, "higgsd")
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	replicaDir := filepath.Join(dir, "replica")
	pAddr, rAddr, fAddr := freeAddr(t), freeAddr(t), freeAddr(t)

	primary := exec.Command(bins["higgsd"], "-addr", pAddr, "-shards", "2",
		"-wal-dir", walDir, "-replication-addr", rAddr)
	var plogs bytes.Buffer
	primary.Stderr = &plogs
	if err := primary.Start(); err != nil {
		t.Fatal(err)
	}
	defer primary.Process.Kill()
	waitHTTP(t, pAddr)
	pBase := "http://" + pAddr

	// Deterministic batches: i%50→i%50+1 at time i, weight 1 — so any
	// double-applied record shows up as a doubled weight.
	feed := func(from, to int) {
		t.Helper()
		const step = 500
		for lo := from; lo < to; lo += step {
			hi := lo + step
			if hi > to {
				hi = to
			}
			var sb strings.Builder
			sb.WriteByte('[')
			for i := lo; i < hi; i++ {
				if i > lo {
					sb.WriteByte(',')
				}
				fmt.Fprintf(&sb, `{"s":%d,"d":%d,"w":1,"t":%d}`, i%50, i%50+1, i)
			}
			sb.WriteByte(']')
			resp, err := http.Post(pBase+"/v1/ingest", "application/json", strings.NewReader(sb.String()))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
				t.Fatalf("ingest status %d", resp.StatusCode)
			}
		}
	}
	flush := func() {
		t.Helper()
		resp, err := http.Post(pBase+"/v1/flush", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	startFollower := func() *exec.Cmd {
		t.Helper()
		f := exec.Command(bins["higgsd"], "-addr", fAddr, "-replicate-from", "http://"+rAddr,
			"-replica-dir", replicaDir)
		f.Stderr = io.Discard
		if err := f.Start(); err != nil {
			t.Fatal(err)
		}
		return f
	}
	converged := func() {
		t.Helper()
		flush()
		target := getHealth(t, pBase).Durability.SyncedSeq
		deadline := time.Now().Add(30 * time.Second)
		fBase := "http://" + fAddr
		for {
			h := getHealth(t, fBase)
			if h.Replication.Role != "follower" {
				t.Fatalf("follower healthz role = %q", h.Replication.Role)
			}
			if h.Replication.AppliedSeq >= target {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at seq %d, want %d", h.Replication.AppliedSeq, target)
			}
			time.Sleep(20 * time.Millisecond)
		}
		want := getSnapshot(t, pBase)
		got := getSnapshot(t, fBase)
		if !bytes.Equal(got, want) {
			t.Fatalf("follower snapshot (%d bytes) diverges from primary (%d bytes): lost or double-applied records",
				len(got), len(want))
		}
	}

	// Phase 1: records exist before the follower is born, so its boot is a
	// catch-up — kill -9 in the middle of it.
	feed(0, 15000)
	f := startFollower()
	time.Sleep(50 * time.Millisecond) // likely mid-catch-up; any point is legal
	if err := f.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	f.Wait()

	// Restart: must resume (cache or snapshot), converge, byte-equal.
	f = startFollower()
	defer func() { f.Process.Kill(); f.Wait() }()
	waitHTTP(t, fAddr)
	converged()

	// Phase 2: kill -9 mid-tail — the primary keeps writing (including an
	// expire record) while the follower dies and comes back.
	feed(15000, 20000)
	resp, err := http.Post(pBase+"/v1/expire", "application/json", strings.NewReader(`{"cutoff":7000}`))
	if err != nil {
		t.Fatal(err)
	}
	var exp map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if exp["dropped"] <= 0 {
		t.Fatalf("expire dropped %d leaves, want > 0 (vacuous)", exp["dropped"])
	}
	if err := f.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	f.Wait()
	feed(20000, 26000)

	f = startFollower()
	defer func() { f.Process.Kill(); f.Wait() }()
	waitHTTP(t, fAddr)
	converged()

	// The replica serves reads — and the same answers as the primary.
	fBase := "http://" + fAddr
	pw := getWeight(t, pBase+"/v1/edge?s=1&d=2&ts=0&te=30000")
	fw := getWeight(t, fBase+"/v1/edge?s=1&d=2&ts=0&te=30000")
	if pw != fw || fw <= 0 {
		t.Fatalf("edge weight: primary %d, follower %d", pw, fw)
	}

	// Writes are refused with 403 on every mutating endpoint.
	for _, wr := range []struct{ path, body string }{
		{"/v1/insert", `[{"s":1,"d":2,"w":1,"t":1}]`},
		{"/v1/ingest", `[{"s":1,"d":2,"w":1,"t":1}]`},
		{"/v1/flush", ""},
		{"/v1/expire", `{"cutoff":1}`},
		{"/v1/delete", `{"s":1,"d":2,"w":1,"t":1}`},
		{"/v1/snapshot", "junk"},
	} {
		resp, err := http.Post(fBase+wr.path, "application/json", strings.NewReader(wr.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("POST %s on replica: status %d, want 403", wr.path, resp.StatusCode)
		}
	}
	// The rejected writes changed nothing: still byte-equal.
	converged()

	h := getHealth(t, fBase)
	if h.Replication.Source != "http://"+rAddr {
		t.Fatalf("follower healthz source = %q, want %q", h.Replication.Source, "http://"+rAddr)
	}
}
