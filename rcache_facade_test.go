package higgs_test

import (
	"errors"
	"testing"

	"higgs"
)

// TestReadCacheFacade: the cache answers exactly like the summary, repeat
// queries hit, and a write invalidates the affected entries automatically.
func TestReadCacheFacade(t *testing.T) {
	s := newSeededSharded(t, 4)
	c, err := higgs.NewReadCache(s, higgs.ReadCacheConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	batch := []higgs.Query{
		higgs.NewEdgeQuery(1, 2, higgs.Between(0, 500)),
		higgs.NewVertexQuery(1, higgs.Between(0, 500)),
		higgs.NewPathQuery([]uint64{1, 2, 3}, higgs.Between(0, 500)),
	}
	want := s.DoBatch(batch)
	for pass := 0; pass < 2; pass++ {
		for i, r := range c.DoBatch(batch) {
			if r.Err != nil || r.Weight != want[i].Weight {
				t.Fatalf("pass %d item %d: cached %+v, uncached %+v", pass, i, r, want[i])
			}
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("warm cache stats = %+v, want hits and entries", st)
	}

	// A write moves the shard's version; the cache must serve the new
	// answer, not the memoized one.
	s.Insert(higgs.Edge{S: 1, D: 2, W: 10, T: 450})
	if r := c.Do(higgs.NewEdgeQuery(1, 2, higgs.Between(0, 500))); r.Err != nil || r.Weight != s.EdgeWeight(1, 2, 0, 500) {
		t.Fatalf("post-insert cached answer %+v, summary says %d", r, s.EdgeWeight(1, 2, 0, 500))
	}

	if _, err := higgs.NewReadCache(s, higgs.ReadCacheConfig{MaxBytes: 1}); err == nil {
		t.Fatal("NewReadCache accepted a 1-byte budget")
	}
}

// TestAdmissionFacade: classification, rate limiting, and the exported
// rejection errors.
func TestAdmissionFacade(t *testing.T) {
	a, err := higgs.NewAdmission(higgs.AdmissionConfig{HeavyProbes: 8, Rate: 0.000001, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Heavy(8) || !a.Heavy(9) {
		t.Fatal("heavy classification does not cut at HeavyProbes")
	}
	for i := 0; i < 2; i++ {
		release, err := a.Admit("client-a", 1)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	if _, err := a.Admit("client-a", 1); !errors.Is(err, higgs.ErrRateLimited) {
		t.Fatalf("drained bucket: err = %v, want ErrRateLimited", err)
	}
	if _, err := a.Admit("client-b", 1); err != nil {
		t.Fatalf("fresh client throttled: %v", err)
	}
	if a.RetryAfter() <= 0 {
		t.Fatal("RetryAfter not positive")
	}
	if st := a.Stats(); st.RateLimited == 0 {
		t.Fatalf("stats = %+v, want rate_limited > 0", st)
	}
}
