package higgs_test

import (
	"bytes"
	"strings"
	"testing"

	"higgs"
)

// newSeededSharded builds a small sharded summary with a known graph.
func newSeededSharded(t *testing.T, shards int) *higgs.Sharded {
	t.Helper()
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = shards
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.Insert(higgs.Edge{S: 1, D: 2, W: 3, T: 100})
	s.Insert(higgs.Edge{S: 1, D: 2, W: 4, T: 200})
	s.Insert(higgs.Edge{S: 2, D: 3, W: 5, T: 300})
	s.Insert(higgs.Edge{S: 7, D: 1, W: 2, T: 400})
	return s
}

// TestQueryFacade: the unified query surface — constructors, Do, DoBatch —
// answers exactly like the per-kind methods.
func TestQueryFacade(t *testing.T) {
	s := newSeededSharded(t, 4)
	w := higgs.Between(0, 500)
	batch := []higgs.Query{
		higgs.NewEdgeQuery(1, 2, w),
		higgs.NewVertexQuery(1, w),
		higgs.NewVertexQuery(2, w, higgs.WithDirection(higgs.DirIn)),
		higgs.NewPathQuery([]uint64{1, 2, 3}, w),
		higgs.NewSubgraphQuery([][2]uint64{{1, 2}, {7, 1}}, w),
	}
	want := []int64{
		s.EdgeWeight(1, 2, 0, 500),
		s.VertexOut(1, 0, 500),
		s.VertexIn(2, 0, 500),
		s.PathWeight([]uint64{1, 2, 3}, 0, 500),
		s.SubgraphWeight([][2]uint64{{1, 2}, {7, 1}}, 0, 500),
	}
	for i, r := range s.DoBatch(batch) {
		if r.Err != nil {
			t.Fatalf("batch item %d: %v", i, r.Err)
		}
		if r.Weight != want[i] {
			t.Errorf("batch item %d: weight %d, per-kind %d", i, r.Weight, want[i])
		}
		if single := s.Do(batch[i]); single.Weight != want[i] || single.Err != nil {
			t.Errorf("Do item %d: %+v, per-kind %d", i, single, want[i])
		}
	}
}

// TestQueryFacadeValidation: per-query errors surface through Result.
func TestQueryFacadeValidation(t *testing.T) {
	s := newSeededSharded(t, 2)
	if r := s.Do(higgs.NewEdgeQuery(1, 2, higgs.Between(500, 0))); r.Err == nil ||
		!strings.Contains(r.Err.Error(), "inverted time range") {
		t.Fatalf("inverted range not rejected: %+v", r)
	}
	if r := s.Do(higgs.NewPathQuery([]uint64{1}, higgs.Between(0, 500))); r.Err == nil {
		t.Fatalf("short path not rejected: %+v", r)
	}
	if k, err := higgs.ParseQueryKind("vertex_in"); err != nil || k != higgs.QueryVertexIn {
		t.Fatalf("ParseQueryKind = %v, %v", k, err)
	}
	if _, err := higgs.ParseQueryKind("sideways"); err == nil {
		t.Fatal("ParseQueryKind accepted an unknown name")
	}
}

// TestShardedExpireFacade: sliding-window expiry through the facade.
func TestShardedExpireFacade(t *testing.T) {
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Enough spread-out leaves that a mid-stream cutoff has whole closed
	// subtrees to reclaim.
	st, err := higgs.GenerateStream(higgs.StreamConfig{
		Nodes: 80, Edges: 20_000, Span: 50_000, Skew: 1.5, Variance: 400,
		Slices: 100, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.InsertBatch(st)
	span := st[len(st)-1].T
	cutoff := span / 2

	wantLive := s.VertexOut(st[0].S, cutoff, span)
	dropped := s.Expire(cutoff)
	if dropped <= 0 {
		t.Fatalf("Expire dropped %d leaves, want > 0", dropped)
	}
	if got := s.VertexOut(st[0].S, cutoff, span); got != wantLive {
		t.Fatalf("live-window answer changed across Expire: %d != %d", got, wantLive)
	}

	// The unsharded facade summary exposes Expire too.
	un, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer un.Close()
	for _, e := range st {
		un.Insert(e)
	}
	if d := un.Expire(cutoff); d <= 0 {
		t.Fatalf("unsharded Expire dropped %d leaves, want > 0", d)
	}
}

// TestLoadShardedLegacyFallback: an unsharded (core-framed) snapshot loads
// through LoadSharded as a one-shard summary that stays fully usable —
// querying, batch-querying, and accepting further inserts.
func TestLoadShardedLegacyFallback(t *testing.T) {
	un, err := higgs.New(higgs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	un.Insert(higgs.Edge{S: 4, D: 5, W: 6, T: 10})
	un.Insert(higgs.Edge{S: 5, D: 6, W: 2, T: 20})
	var legacy bytes.Buffer
	if _, err := un.WriteTo(&legacy); err != nil {
		t.Fatal(err)
	}

	adopted, err := higgs.LoadSharded(&legacy)
	if err != nil {
		t.Fatalf("LoadSharded(legacy snapshot): %v", err)
	}
	defer adopted.Close()
	if adopted.NumShards() != 1 {
		t.Fatalf("adopted shards = %d, want 1", adopted.NumShards())
	}
	if got := adopted.Items(); got != 2 {
		t.Fatalf("adopted items = %d, want 2", got)
	}
	if r := adopted.Do(higgs.NewPathQuery([]uint64{4, 5, 6}, higgs.Between(0, 30))); r.Err != nil || r.Weight != 8 {
		t.Fatalf("adopted path query = %+v, want weight 8", r)
	}
	// The adopted summary keeps ingesting where the original left off.
	adopted.Insert(higgs.Edge{S: 4, D: 5, W: 1, T: 30})
	if got := adopted.EdgeWeight(4, 5, 0, 40); got != 7 {
		t.Fatalf("EdgeWeight after post-adoption insert = %d, want 7", got)
	}
	// Re-snapshotting writes the sharded framing, which round-trips.
	var resnap bytes.Buffer
	if _, err := adopted.WriteTo(&resnap); err != nil {
		t.Fatal(err)
	}
	back, err := higgs.LoadSharded(&resnap)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if got := back.EdgeWeight(4, 5, 0, 40); got != 7 {
		t.Fatalf("round-tripped EdgeWeight = %d, want 7", got)
	}
}
