package higgs_test

import (
	"errors"
	"sync"
	"testing"

	"higgs"
)

// TestIngestFacade exercises the public group-commit pipeline: async
// submits become visible after Flush, and Close drains without loss.
func TestIngestFacade(t *testing.T) {
	s, err := higgs.NewSharded(higgs.DefaultShardedConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := higgs.DefaultIngestConfig()
	cfg.Mode = higgs.IngestAsync
	p, err := higgs.NewIngest(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := p.Submit([]higgs.Edge{
		{S: 1, D: 2, W: 3, T: 100},
		{S: 1, D: 2, W: 4, T: 200},
		{S: 2, D: 3, W: 5, T: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("async submit applied synchronously")
	}
	p.Flush()
	if got := s.EdgeWeight(1, 2, 0, 250); got != 7 {
		t.Errorf("EdgeWeight after Flush = %d, want 7", got)
	}
	p.Close() // drains; summary closed by the deferred s.Close afterwards
	if _, err := p.Submit([]higgs.Edge{{S: 9, D: 9, W: 1, T: 400}}); !errors.Is(err, higgs.ErrIngestClosed) {
		t.Errorf("Submit after Close = %v, want ErrIngestClosed", err)
	}
	if got := s.Items(); got != 3 {
		t.Errorf("Items = %d, want 3", got)
	}
}

// TestIngestFacadeConcurrent: the pipeline is safe for concurrent
// submitters and flushers (run with -race).
func TestIngestFacadeConcurrent(t *testing.T) {
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 4
	s, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p, err := higgs.NewIngest(s, higgs.IngestConfig{Mode: higgs.IngestAsync, QueueDepth: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				e := []higgs.Edge{{S: uint64(w*1000 + i), D: uint64(i), W: 1, T: int64(i)}}
				for {
					if _, err := p.Submit(e); err == nil {
						break
					} else if !errors.Is(err, higgs.ErrIngestQueueFull) {
						t.Error(err)
						return
					}
				}
				if i%100 == 0 {
					p.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	p.Flush()
	if got := s.Items(); got != 1600 {
		t.Fatalf("Items = %d, want 1600", got)
	}
}
