package higgs_test

import (
	"bytes"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"higgs"
)

// TestReplicationFacade drives the replication surface through the public
// API: a WAL-backed primary serves its feed, a follower boots and tails
// it, and the replicated summary is byte-identical to the primary's.
func TestReplicationFacade(t *testing.T) {
	dir := t.TempDir()
	cfg := higgs.DefaultShardedConfig()
	cfg.Shards = 2

	w, err := higgs.OpenWAL(higgs.WALConfig{Dir: filepath.Join(dir, "wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	sum, err := higgs.NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sum.Close()
	icfg := higgs.DefaultIngestConfig()
	icfg.Mode = higgs.IngestSync
	icfg.WAL = w
	pipe, err := higgs.NewIngest(sum, icfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()

	srv := httptest.NewServer(higgs.NewReplicationPrimary(sum, w).Handler())
	defer srv.Close()

	st, err := higgs.GenerateStream(higgs.StreamConfig{
		Nodes: 60, Edges: 800, Span: 1000, Skew: 1.5, Variance: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Submit(st[:len(st)/2]); err != nil {
		t.Fatal(err)
	}

	f, err := higgs.NewFollower(higgs.FollowerConfig{
		Source:        srv.URL,
		PollWait:      100 * time.Millisecond,
		RetryInterval: 20 * time.Millisecond,
		OnError:       func(err error) { t.Logf("follower: %v", err) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := pipe.Submit(st[len(st)/2:]); err != nil {
		t.Fatal(err)
	}
	if !f.WaitApplied(w.LastSeq(), 30*time.Second) {
		t.Fatalf("follower stuck at %d, want %d", f.Status().AppliedSeq, w.LastSeq())
	}

	var want, got bytes.Buffer
	if _, err := sum.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Summary().WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("replica differs from primary (%d vs %d bytes)", got.Len(), want.Len())
	}
	st2 := f.Status()
	if st2.AppliedSeq == 0 || st2.PrimarySeq < st2.AppliedSeq {
		t.Fatalf("status = %+v", st2)
	}
}
